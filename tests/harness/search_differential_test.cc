// SearchCore-vs-reference differential fuzzing. For the exact visited
// structures (open-addressing hash table and epoch array) the production
// pipeline must match the oracle-backed reference search *exactly* — same
// visit order, same iteration count, same saturation behaviour, same final
// neighbors — across randomized datasets, graphs, metrics, queue sizes and
// the §IV-D/§IV-E optimization combinations. The probabilistic structures
// (Bloom, Cuckoo) are held to their one-sided-error contract instead: valid,
// genuinely-scored, terminating results whose aggregate recall never beats
// the exact-visited twin.
//
// Together with tests/harness/structure_fuzz_test.cc this runs well over
// 1000 fuzz iterations per invocation across all four VisitedStructure
// variants.

#include "gtest/gtest.h"
#include "harness/fuzz.h"

namespace song::harness {
namespace {

TEST(HarnessSearchDifferential, HashTableMatchesReferenceExactly) {
  const DifferentialReport report =
      FuzzSearchDifferential(VisitedStructure::kHashTable, BaseSeed(), 400);
  EXPECT_GT(report.checks, 1000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessSearchDifferential, EpochArrayMatchesReferenceExactly) {
  const DifferentialReport report =
      FuzzSearchDifferential(VisitedStructure::kEpochArray, BaseSeed(), 400);
  EXPECT_GT(report.checks, 1000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessSearchDifferential, BloomFilterSanityAndRecallDominance) {
  const DifferentialReport report = FuzzProbabilisticSearchSanity(
      VisitedStructure::kBloomFilter, BaseSeed(), 150);
  EXPECT_GT(report.checks, 500u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessSearchDifferential, CuckooFilterSanityAndRecallDominance) {
  const DifferentialReport report = FuzzProbabilisticSearchSanity(
      VisitedStructure::kCuckooFilter, BaseSeed(), 150);
  EXPECT_GT(report.checks, 500u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

}  // namespace
}  // namespace song::harness
