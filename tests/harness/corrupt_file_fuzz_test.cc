// Corrupted-bytes fuzz over every on-disk format (SNGD datasets, SNGG
// fixed-degree graphs, SNGC CSR graphs): hundreds of deterministic
// truncations, bit flips, extensions and header scrambles, each of which
// must come back as an error Status (or as a still-valid load) — never a
// crash, OOM, or sanitizer report. This is the acceptance gate for the
// loader hardening: a hostile header may not drive an allocation, and a
// mutated payload may not smuggle out-of-range neighbor ids into search.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "graph/csr_graph.h"
#include "graph/fixed_degree_graph.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"

namespace song {
namespace {

std::vector<uint8_t> ReadAll(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Applies one deterministic mutation drawn from `rng` to a copy of
/// `pristine`: truncation, 1–16 bit flips, garbage extension, or a header
/// overwrite with an extreme value (the hostile-allocation case).
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& pristine,
                            std::mt19937_64& rng) {
  std::vector<uint8_t> bytes = pristine;
  switch (rng() % 4) {
    case 0: {  // truncate anywhere, including to zero bytes
      bytes.resize(rng() % (bytes.size() + 1));
      break;
    }
    case 1: {  // flip 1..16 random bits
      const size_t flips = 1 + rng() % 16;
      for (size_t i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[rng() % bytes.size()] ^= uint8_t{1} << (rng() % 8);
      }
      break;
    }
    case 2: {  // append random garbage
      const size_t extra = 1 + rng() % 256;
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng()));
      }
      break;
    }
    default: {  // stomp a header field with an extreme count
      const uint64_t extremes[] = {0, ~0ull, uint64_t{1} << 62,
                                   uint64_t{1} << 41, 0x4141414141414141ull};
      const uint64_t v = extremes[rng() % 5];
      const size_t header = std::min<size_t>(bytes.size(), 24);
      if (header >= sizeof(v)) {
        const size_t off = rng() % (header - sizeof(v) + 1);
        std::memcpy(bytes.data() + off, &v, sizeof(v));
      }
      break;
    }
  }
  return bytes;
}

struct FuzzFixture {
  std::string dataset_path;
  std::string graph_path;
  std::string csr_path;
  std::vector<uint8_t> dataset_bytes;
  std::vector<uint8_t> graph_bytes;
  std::vector<uint8_t> csr_bytes;

  static const FuzzFixture& Get() {
    static FuzzFixture* f = [] {
      auto* fx = new FuzzFixture();
      const std::string dir = ::testing::TempDir();
      fx->dataset_path = dir + "/corrupt_fuzz.sngd";
      fx->graph_path = dir + "/corrupt_fuzz.sngg";
      fx->csr_path = dir + "/corrupt_fuzz.sngc";

      Dataset data(200, 16);
      std::mt19937_64 rng(0x51a7e57);
      std::vector<float> row(16);
      for (size_t i = 0; i < data.num(); ++i) {
        for (float& v : row) {
          v = static_cast<float>(rng() % 1000) / 100.0f;
        }
        data.SetRow(static_cast<idx_t>(i), row.data());
      }
      EXPECT_TRUE(data.Save(fx->dataset_path).ok());

      NswBuildOptions nsw;
      nsw.degree = 8;
      nsw.num_threads = 1;
      const FixedDegreeGraph graph = NswBuilder::Build(data, Metric::kL2, nsw);
      EXPECT_TRUE(graph.Save(fx->graph_path).ok());
      EXPECT_TRUE(CsrGraph::FromFixedDegree(graph).Save(fx->csr_path).ok());

      fx->dataset_bytes = ReadAll(fx->dataset_path);
      fx->graph_bytes = ReadAll(fx->graph_path);
      fx->csr_bytes = ReadAll(fx->csr_path);
      return fx;
    }();
    return *f;
  }
};

constexpr size_t kRoundsPerFormat = 100;  // 300 mutated files total

TEST(HarnessCorruptFileFuzz, DatasetLoadNeverCrashes) {
  const FuzzFixture& fx = FuzzFixture::Get();
  std::mt19937_64 rng(0xD47A);
  const std::string path = fx.dataset_path + ".mut";
  for (size_t round = 0; round < kRoundsPerFormat; ++round) {
    WriteAll(path, Mutate(fx.dataset_bytes, rng));
    StatusOr<Dataset> loaded = Dataset::Load(path);
    if (loaded.ok()) {
      // A load that survives mutation must still be internally consistent.
      EXPECT_GT(loaded->dim(), 0u) << "round " << round;
      EXPECT_GT(loaded->num(), 0u) << "round " << round;
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

TEST(HarnessCorruptFileFuzz, FixedDegreeGraphLoadNeverCrashes) {
  const FuzzFixture& fx = FuzzFixture::Get();
  std::mt19937_64 rng(0x6A4F);
  const std::string path = fx.graph_path + ".mut";
  for (size_t round = 0; round < kRoundsPerFormat; ++round) {
    WriteAll(path, Mutate(fx.graph_bytes, rng));
    StatusOr<FixedDegreeGraph> loaded = FixedDegreeGraph::Load(path);
    if (loaded.ok()) {
      // Bounds validation is part of the load contract: every surviving
      // neighbor id must be a real vertex (search indexes rows with them).
      const FixedDegreeGraph& g = loaded.value();
      for (size_t v = 0; v < g.num_vertices(); ++v) {
        for (const idx_t u : g.Neighbors(static_cast<idx_t>(v))) {
          ASSERT_LT(u, g.num_vertices()) << "round " << round;
        }
      }
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

TEST(HarnessCorruptFileFuzz, CsrGraphLoadNeverCrashes) {
  const FuzzFixture& fx = FuzzFixture::Get();
  std::mt19937_64 rng(0xC54);
  const std::string path = fx.csr_path + ".mut";
  for (size_t round = 0; round < kRoundsPerFormat; ++round) {
    WriteAll(path, Mutate(fx.csr_bytes, rng));
    StatusOr<CsrGraph> loaded = CsrGraph::Load(path);
    if (loaded.ok()) {
      EXPECT_TRUE(loaded->Validate().ok()) << "round " << round;
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

TEST(HarnessCorruptFileFuzz, PristineFilesRoundTrip) {
  const FuzzFixture& fx = FuzzFixture::Get();
  EXPECT_TRUE(Dataset::Load(fx.dataset_path).ok());
  EXPECT_TRUE(FixedDegreeGraph::Load(fx.graph_path).ok());
  EXPECT_TRUE(CsrGraph::Load(fx.csr_path).ok());
}

TEST(HarnessCorruptFileFuzz, MissingFileIsStatusNotCrash) {
  const StatusOr<Dataset> d = Dataset::Load("/nonexistent/dir/x.sngd");
  EXPECT_FALSE(d.ok());
  const StatusOr<FixedDegreeGraph> g =
      FixedDegreeGraph::Load("/nonexistent/dir/x.sngg");
  EXPECT_FALSE(g.ok());
  const StatusOr<CsrGraph> c = CsrGraph::Load("/nonexistent/dir/x.sngc");
  EXPECT_FALSE(c.ok());
}

}  // namespace
}  // namespace song
