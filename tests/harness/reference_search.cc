#include "harness/reference_search.h"

#include <algorithm>

#include "harness/oracles.h"

namespace song::harness {

ReferenceSearchResult ReferenceSongSearch(
    const FixedDegreeGraph& graph, idx_t entry, size_t k,
    const SongSearchOptions& options, size_t visited_capacity,
    const std::function<float(idx_t)>& distance) {
  const size_t ef = std::max(options.queue_size, k);
  const size_t degree = graph.degree();
  const size_t multi_step = std::max<size_t>(1, options.multi_step_probe);
  const bool deletion_ok =
      options.visited_deletion &&
      options.structure != VisitedStructure::kBloomFilter;

  OracleBoundedQueue q(ef);
  OracleBoundedQueue topk(ef);
  OracleVisitedSet visited(visited_capacity);
  std::vector<idx_t> candidates;

  ReferenceSearchResult out;

  const float entry_dist = distance(entry);
  out.visit_order.push_back(entry);
  visited.Insert(entry);
  q.Push(Neighbor(entry_dist, entry));

  while (!q.empty()) {
    ++out.iterations;

    // Stage 1: candidate locating.
    candidates.clear();
    bool terminate = false;
    for (size_t step = 0; step < multi_step && !q.empty(); ++step) {
      const Neighbor now = q.Min();
      // Strictly-greater termination: equal-distance vertices still expand.
      if (topk.full() && now.dist > topk.Max().dist) {
        if (step == 0) terminate = true;
        break;
      }
      q.PopMin();

      Neighbor evicted;
      const bool had_eviction = topk.full();
      const bool entered_topk = topk.PushBounded(now, &evicted);
      if (entered_topk && had_eviction && deletion_ok) {
        visited.Erase(evicted.id);
      }
      // A popped vertex that failed to enter topk (exact tie with the
      // current maximum) stays in `visited` — mirroring search_core.h.

      const idx_t* row = graph.Row(now.id);
      for (size_t i = 0; i < degree && row[i] != kInvalidIdx; ++i) {
        const idx_t v = row[i];
        if (visited.Test(v)) continue;
        if (std::find(candidates.begin(), candidates.end(), v) ==
            candidates.end()) {
          candidates.push_back(v);
        }
      }
    }
    if (terminate) break;
    if (candidates.empty()) continue;

    // Stage 2: bulk distance computation.
    std::vector<float> dists(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      dists[i] = distance(candidates[i]);
      out.visit_order.push_back(candidates[i]);
    }

    // Stage 3: maintenance.
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Neighbor cand(dists[i], candidates[i]);
      if (options.selected_insertion && topk.full() &&
          cand.dist > topk.Max().dist) {
        continue;  // §IV-D filter
      }
      if (!visited.Insert(cand.id)) {
        ++out.visited_insert_failures;
        continue;  // saturated structure: treated as visited
      }
      Neighbor evicted;
      const bool had_eviction = q.full();
      const bool accepted = q.PushBounded(cand, &evicted);
      if (!accepted) {
        if (deletion_ok) visited.Erase(cand.id);
        continue;
      }
      if (had_eviction && deletion_ok) {
        visited.Erase(evicted.id);
      }
    }
  }

  out.results = topk.Sorted();
  if (out.results.size() > k) out.results.resize(k);
  return out;
}

std::vector<Neighbor> BruteForceTopK(
    size_t num_points, size_t k, const std::function<float(idx_t)>& distance) {
  std::vector<Neighbor> all;
  all.reserve(num_points);
  for (size_t v = 0; v < num_points; ++v) {
    all.emplace_back(distance(static_cast<idx_t>(v)), static_cast<idx_t>(v));
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace song::harness
