// Online-mutation differential fuzzing: seed-driven interleavings of
// insert / search / delete on a MutableIndex, checked round-by-round against
// the incrementally-maintained brute-force oracle (OracleDynamicIndex),
// across all four visited structures — 130 rounds each, 520 interleaved
// rounds per invocation. Exact structures (hash table, epoch array) must
// match the oracle-backed reference search element-for-element after the
// tombstone filter; the probabilistic structures are held to the sorted/
// unique/live/genuine-distance contract. Every round also exercises
// snapshot pinning (bit-identical replay after later mutations), post-insert
// reachability, Status error paths and retired-version reclamation — see
// FuzzMutationDifferential in harness/fuzz.h for the full check list.
//
// The concurrency tests at the bottom are the designated TSan targets: a
// writer thread publishing versions while reader threads pin snapshots and
// verify their immutable view. They assert no torn reads, monotonic
// versions, and result stability per pinned version; the CI
// SONG_SANITIZE=thread leg runs them under TSan.

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "harness/fuzz.h"
#include "song/index_snapshot.h"
#include "song/mutable_index.h"
#include "song/search_core.h"

namespace song::harness {
namespace {

TEST(HarnessMutationDifferential, HashTableMatchesOracle) {
  const DifferentialReport report =
      FuzzMutationDifferential(VisitedStructure::kHashTable, BaseSeed(), 130);
  EXPECT_GT(report.checks, 2000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessMutationDifferential, EpochArrayMatchesOracle) {
  const DifferentialReport report =
      FuzzMutationDifferential(VisitedStructure::kEpochArray, BaseSeed(), 130);
  EXPECT_GT(report.checks, 2000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessMutationDifferential, BloomFilterHoldsMutationContract) {
  const DifferentialReport report = FuzzMutationDifferential(
      VisitedStructure::kBloomFilter, BaseSeed(), 130);
  EXPECT_GT(report.checks, 2000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessMutationDifferential, CuckooFilterHoldsMutationContract) {
  const DifferentialReport report = FuzzMutationDifferential(
      VisitedStructure::kCuckooFilter, BaseSeed(), 130);
  EXPECT_GT(report.checks, 2000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

// ---------------------------------------------------------------------------
// Concurrent writer/readers — the TSan targets.
// ---------------------------------------------------------------------------

uint64_t MixSeed(uint64_t base, uint64_t stream) {
  uint64_t state = base ^ (stream * 0x9e3779b97f4a7c15ULL);
  return SplitMix64(state);
}

std::vector<float> DeterministicPoint(RandomEngine& rng, size_t dim) {
  std::vector<float> v(dim);
  for (size_t d = 0; d < dim; ++d) {
    v[d] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  if (v[0] == 0.0f) v[0] = 0.5f;
  return v;
}

TEST(HarnessMutationDifferential, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr size_t kDim = 8;
  constexpr size_t kReaders = 4;
  constexpr size_t kMutations = 300;
  MutableIndex index(Metric::kL2, kDim, MutableIndexOptions{.degree = 8});

  // Seed a few points so readers always have something to search.
  RandomEngine seed_rng(MixSeed(BaseSeed(), 0x91));
  for (size_t i = 0; i < 16; ++i) {
    const std::vector<float> p = DeterministicPoint(seed_rng, kDim);
    ASSERT_TRUE(index.Insert(p.data()).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> reader_failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      RandomEngine rng(MixSeed(BaseSeed(), 0xA0 + r));
      SongWorkspace workspace;
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
        // Versions observed by one reader never go backwards.
        if (snapshot->version() < last_version) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        last_version = snapshot->version();
        const std::vector<float> q = DeterministicPoint(rng, kDim);
        SongSearchOptions options;
        options.queue_size = 16;
        const std::vector<Neighbor> a =
            snapshot->Search(q.data(), 5, options, &workspace);
        const std::vector<Neighbor> b =
            snapshot->Search(q.data(), 5, options, &workspace);
        // A pinned snapshot is immutable: identical query, identical answer,
        // regardless of the concurrent writer.
        if (a.size() != b.size() ||
            !std::equal(a.begin(), a.end(), b.begin(),
                        [](const Neighbor& x, const Neighbor& y) {
                          return x == y;
                        })) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        for (const Neighbor& n : a) {
          if (n.id >= snapshot->num_points() || !snapshot->IsLive(n.id)) {
            reader_failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }

  RandomEngine rng(MixSeed(BaseSeed(), 0x92));
  size_t inserted = 16;
  for (size_t i = 0; i < kMutations; ++i) {
    if (rng.NextUint(3) != 0) {
      const std::vector<float> p = DeterministicPoint(rng, kDim);
      ASSERT_TRUE(index.Insert(p.data()).ok());
      ++inserted;
    } else {
      // Deleting an arbitrary id may hit a tombstone; both outcomes are
      // legal under concurrency, only crashes/races are not.
      (void)index.Delete(static_cast<idx_t>(rng.NextUint(inserted)));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(reader_failures.load(), 0u);
  EXPECT_EQ(index.num_points(), inserted);
  // Every insert publishes a version; failed deletes (double-deletes) do not.
  EXPECT_GE(index.version(), inserted);
  EXPECT_LE(index.version(), inserted + kMutations);
}

TEST(HarnessMutationDifferential, ConcurrentAcquireNeverBlocksReclamation) {
  constexpr size_t kDim = 4;
  MutableIndex index(Metric::kL2, kDim, MutableIndexOptions{.degree = 6});
  RandomEngine rng(MixSeed(BaseSeed(), 0x93));
  for (size_t i = 0; i < 8; ++i) {
    const std::vector<float> p = DeterministicPoint(rng, kDim);
    ASSERT_TRUE(index.Insert(p.data()).ok());
  }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
      ASSERT_LE(snapshot->live_points(), snapshot->num_points());
    }
  });
  for (size_t i = 0; i < 200; ++i) {
    const std::vector<float> p = DeterministicPoint(rng, kDim);
    ASSERT_TRUE(index.Insert(p.data()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Once the reader is gone, every retired version must be reclaimable.
  index.ReclaimRetired();
  EXPECT_EQ(index.retired_versions(), 0u);
}

}  // namespace
}  // namespace song::harness
