// Copyright 2026 The SONG-Repro Authors.
//
// Oracle-backed reference implementation of the SONG 3-stage search
// (src/song/search_core.h), built on the std:: oracles in oracles.h instead
// of the production SMMH / bounded heap / open-addressing structures. It
// mirrors the paper's semantics statement-for-statement — bounded queue
// (§IV-C), selected insertion (§IV-D), visited deletion (§IV-E), multi-step
// probing (§V), the strict-termination tie rule — and records the exact
// sequence of distance computations, so SongSearchCore can be required to
// visit the *same vertices in the same order* and return the *same
// neighbors*, the paper's core GPU-equals-CPU claim.

#ifndef SONG_TESTS_HARNESS_REFERENCE_SEARCH_H_
#define SONG_TESTS_HARNESS_REFERENCE_SEARCH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/types.h"
#include "graph/fixed_degree_graph.h"
#include "song/search_options.h"

namespace song::harness {

struct ReferenceSearchResult {
  std::vector<Neighbor> results;    ///< final top-k, ascending
  std::vector<idx_t> visit_order;   ///< every distance computation, in order
  size_t iterations = 0;            ///< main-loop rounds
  size_t visited_insert_failures = 0;
};

/// Runs the reference search. `visited_capacity` = 0 models an unbounded
/// exact visited set; pass internal::AutoHashCapacity(...) to model the
/// saturation behaviour of a bounded OpenAddressingSet exactly.
ReferenceSearchResult ReferenceSongSearch(
    const FixedDegreeGraph& graph, idx_t entry, size_t k,
    const SongSearchOptions& options, size_t visited_capacity,
    const std::function<float(idx_t)>& distance);

/// Exact top-k by exhaustive scan over [0, num_points) — the ground truth
/// for recall-based metamorphic properties.
std::vector<Neighbor> BruteForceTopK(
    size_t num_points, size_t k, const std::function<float(idx_t)>& distance);

}  // namespace song::harness

#endif  // SONG_TESTS_HARNESS_REFERENCE_SEARCH_H_
