// Copyright 2026 The SONG-Repro Authors.
//
// Reference oracles for the differential harness: trivially-correct
// standard-library implementations of the bounded double-ended priority
// queue, the bounded top-k heap, and the visited set. The production
// structures in src/song/ are checked move-for-move against these on
// randomized op sequences (tests/harness/structure_fuzz_test.cc) and inside
// a full mirrored search (tests/harness/reference_search.*). Oracles favour
// obviousness over speed — a std::multiset is slow and correct by
// construction, which is exactly the point.

#ifndef SONG_TESTS_HARNESS_ORACLES_H_
#define SONG_TESTS_HARNESS_ORACLES_H_

#include <cstddef>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace song::harness {

/// Oracle twin of SymmetricMinMaxHeap: a bounded double-ended priority queue
/// over Neighbor (operator< orders by distance, ties on id). Also doubles as
/// the oracle for BoundedMaxHeap, whose PushBounded semantics are identical.
class OracleBoundedQueue {
 public:
  explicit OracleBoundedQueue(size_t capacity = 0) : capacity_(capacity) {}

  void Reset(size_t capacity) {
    capacity_ = capacity;
    set_.clear();
  }
  void Clear() { set_.clear(); }

  size_t size() const { return set_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return set_.empty(); }
  bool full() const { return set_.size() >= capacity_; }

  Neighbor Min() const { return *set_.begin(); }
  Neighbor Max() const { return *set_.rbegin(); }

  /// Mirrors SymmetricMinMaxHeap::Push (caller guarantees !full()).
  void Push(const Neighbor& x) { set_.insert(x); }

  /// Mirrors {SymmetricMinMaxHeap,BoundedMaxHeap}::PushBounded: inserts,
  /// evicting the maximum when full; rejects x when !(x < Max()).
  bool PushBounded(const Neighbor& x, Neighbor* evicted = nullptr) {
    if (!full()) {
      set_.insert(x);
      return true;
    }
    if (!(x < Max())) return false;
    if (evicted != nullptr) *evicted = Max();
    set_.erase(std::prev(set_.end()));
    set_.insert(x);
    return true;
  }

  Neighbor PopMin() {
    const Neighbor n = *set_.begin();
    set_.erase(set_.begin());
    return n;
  }

  Neighbor PopMax() {
    const Neighbor n = *set_.rbegin();
    set_.erase(std::prev(set_.end()));
    return n;
  }

  /// Contents sorted ascending — what BoundedMaxHeap::TakeSorted returns and
  /// the order SymmetricMinMaxHeap drains in under repeated PopMin.
  std::vector<Neighbor> Sorted() const {
    return std::vector<Neighbor>(set_.begin(), set_.end());
  }

 private:
  std::multiset<Neighbor> set_;
  size_t capacity_ = 0;
};

/// Oracle twin of the exact visited structures (OpenAddressingSet behind
/// VisitedTable, and the epoch array). `capacity` = 0 models an unbounded
/// set; otherwise Insert fails exactly when `size() >= capacity` — which is
/// also the precise saturation contract of OpenAddressingSet: its slot array
/// (2x capacity, tombstone-reusing full scan) can always place a key while
/// the live count is below the declared element capacity.
class OracleVisitedSet {
 public:
  explicit OracleVisitedSet(size_t capacity = 0) : capacity_(capacity) {}

  void Reset(size_t capacity) {
    capacity_ = capacity;
    set_.clear();
  }
  void Clear() { set_.clear(); }

  size_t size() const { return set_.size(); }
  bool Test(idx_t key) const { return set_.count(key) != 0; }

  bool Insert(idx_t key) {
    if (set_.count(key) != 0) return false;
    if (capacity_ != 0 && set_.size() >= capacity_) return false;
    set_.insert(key);
    return true;
  }

  bool Erase(idx_t key) { return set_.erase(key) != 0; }

 private:
  std::unordered_set<idx_t> set_;
  size_t capacity_ = 0;
};

}  // namespace song::harness

#endif  // SONG_TESTS_HARNESS_ORACLES_H_
