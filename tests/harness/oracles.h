// Copyright 2026 The SONG-Repro Authors.
//
// Reference oracles for the differential harness: trivially-correct
// standard-library implementations of the bounded double-ended priority
// queue, the bounded top-k heap, and the visited set. The production
// structures in src/song/ are checked move-for-move against these on
// randomized op sequences (tests/harness/structure_fuzz_test.cc) and inside
// a full mirrored search (tests/harness/reference_search.*). Oracles favour
// obviousness over speed — a std::multiset is slow and correct by
// construction, which is exactly the point.

#ifndef SONG_TESTS_HARNESS_ORACLES_H_
#define SONG_TESTS_HARNESS_ORACLES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/distance.h"
#include "core/types.h"

namespace song::harness {

/// Oracle twin of SymmetricMinMaxHeap: a bounded double-ended priority queue
/// over Neighbor (operator< orders by distance, ties on id). Also doubles as
/// the oracle for BoundedMaxHeap, whose PushBounded semantics are identical.
class OracleBoundedQueue {
 public:
  explicit OracleBoundedQueue(size_t capacity = 0) : capacity_(capacity) {}

  void Reset(size_t capacity) {
    capacity_ = capacity;
    set_.clear();
  }
  void Clear() { set_.clear(); }

  size_t size() const { return set_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return set_.empty(); }
  bool full() const { return set_.size() >= capacity_; }

  Neighbor Min() const { return *set_.begin(); }
  Neighbor Max() const { return *set_.rbegin(); }

  /// Mirrors SymmetricMinMaxHeap::Push (caller guarantees !full()).
  void Push(const Neighbor& x) { set_.insert(x); }

  /// Mirrors {SymmetricMinMaxHeap,BoundedMaxHeap}::PushBounded: inserts,
  /// evicting the maximum when full; rejects x when !(x < Max()).
  bool PushBounded(const Neighbor& x, Neighbor* evicted = nullptr) {
    if (!full()) {
      set_.insert(x);
      return true;
    }
    if (!(x < Max())) return false;
    if (evicted != nullptr) *evicted = Max();
    set_.erase(std::prev(set_.end()));
    set_.insert(x);
    return true;
  }

  Neighbor PopMin() {
    const Neighbor n = *set_.begin();
    set_.erase(set_.begin());
    return n;
  }

  Neighbor PopMax() {
    const Neighbor n = *set_.rbegin();
    set_.erase(std::prev(set_.end()));
    return n;
  }

  /// Contents sorted ascending — what BoundedMaxHeap::TakeSorted returns and
  /// the order SymmetricMinMaxHeap drains in under repeated PopMin.
  std::vector<Neighbor> Sorted() const {
    return std::vector<Neighbor>(set_.begin(), set_.end());
  }

 private:
  std::multiset<Neighbor> set_;
  size_t capacity_ = 0;
};

/// Oracle twin of the exact visited structures (OpenAddressingSet behind
/// VisitedTable, and the epoch array). `capacity` = 0 models an unbounded
/// set; otherwise Insert fails exactly when `size() >= capacity` — which is
/// also the precise saturation contract of OpenAddressingSet: its slot array
/// (2x capacity, tombstone-reusing full scan) can always place a key while
/// the live count is below the declared element capacity.
class OracleVisitedSet {
 public:
  explicit OracleVisitedSet(size_t capacity = 0) : capacity_(capacity) {}

  void Reset(size_t capacity) {
    capacity_ = capacity;
    set_.clear();
  }
  void Clear() { set_.clear(); }

  size_t size() const { return set_.size(); }
  bool Test(idx_t key) const { return set_.count(key) != 0; }

  bool Insert(idx_t key) {
    if (set_.count(key) != 0) return false;
    if (capacity_ != 0 && set_.size() >= capacity_) return false;
    set_.insert(key);
    return true;
  }

  bool Erase(idx_t key) { return set_.erase(key) != 0; }

 private:
  std::unordered_set<idx_t> set_;
  size_t capacity_ = 0;
};

/// Oracle twin of MutableIndex: a flat store of vectors with live flags.
/// Insert appends, Delete flips a flag, TopK is an exhaustive scan over the
/// live rows — slow and correct by construction. Ids are dense and never
/// reused, mirroring the production contract (the i-th insert gets id i and
/// a deleted id stays dead forever).
class OracleDynamicIndex {
 public:
  OracleDynamicIndex(Metric metric, size_t dim) : metric_(metric), dim_(dim) {}

  Metric metric() const { return metric_; }
  size_t dim() const { return dim_; }
  size_t num_points() const { return live_.size(); }
  size_t live_count() const { return live_count_; }
  bool IsLive(idx_t id) const { return id < live_.size() && live_[id] != 0; }

  idx_t Insert(const float* vector) {
    vectors_.insert(vectors_.end(), vector, vector + dim_);
    live_.push_back(1);
    ++live_count_;
    return static_cast<idx_t>(live_.size() - 1);
  }

  /// False when the id was never assigned or is already dead.
  bool Delete(idx_t id) {
    if (!IsLive(id)) return false;
    live_[id] = 0;
    --live_count_;
    return true;
  }

  const float* Vector(idx_t id) const {
    return vectors_.data() + static_cast<size_t>(id) * dim_;
  }

  std::vector<idx_t> LiveIds() const {
    std::vector<idx_t> out;
    out.reserve(live_count_);
    for (size_t id = 0; id < live_.size(); ++id) {
      if (live_[id] != 0) out.push_back(static_cast<idx_t>(id));
    }
    return out;
  }

  /// Exact top-k over the live rows, ascending — Neighbor's (dist, id)
  /// ordering breaks ties, so the answer is unique.
  std::vector<Neighbor> TopK(const float* query, size_t k) const {
    const DistanceFunc dist = GetDistanceFunc(metric_);
    std::vector<Neighbor> all;
    all.reserve(live_count_);
    for (size_t id = 0; id < live_.size(); ++id) {
      if (live_[id] == 0) continue;
      all.emplace_back(dist(query, Vector(static_cast<idx_t>(id)), dim_),
                       static_cast<idx_t>(id));
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

 private:
  Metric metric_;
  size_t dim_;
  std::vector<float> vectors_;  ///< row-major, including dead rows
  std::vector<uint8_t> live_;
  size_t live_count_ = 0;
};

}  // namespace song::harness

#endif  // SONG_TESTS_HARNESS_ORACLES_H_
