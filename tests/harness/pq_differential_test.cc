// PQ traversal differential harness. Two contracts:
//
//   1. Recall parity: on clustered synthetics (two datasets, L2 and inner
//      product), ADC traversal + exact rerank must land within a small
//      epsilon of the exact searcher's recall at matched ef — the rerank of
//      the final pool is supposed to recover almost all of the precision
//      the m-byte codes gave up.
//
//   2. Bit identity when off: enabling PQ on a searcher must not perturb
//      exact search at all. quant == kNone on a PQ-enabled searcher returns
//      the identical ids AND the identical float distances as a searcher
//      that never saw a codebook.

#include <cstring>
#include <set>
#include <vector>

#include "baselines/flat_index.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "quant/pq.h"
#include "song/song_searcher.h"

namespace song {
namespace {

struct PqWorld {
  SyntheticData gen;
  FixedDegreeGraph graph;
  std::vector<std::vector<Neighbor>> ground_truth;
};

PqWorld BuildWorld(size_t dim, size_t num_clusters, Metric metric,
                   uint64_t seed, size_t k) {
  PqWorld w;
  SyntheticSpec spec;
  spec.name = "pq-differential";
  spec.dim = dim;
  spec.num_points = 3000;
  spec.num_queries = 50;
  spec.num_clusters = num_clusters;
  spec.cluster_std = 0.4;
  spec.seed = seed;
  w.gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  w.graph = NswBuilder::Build(w.gen.points, metric, nsw);
  FlatIndex flat(&w.gen.points, metric);
  w.ground_truth = flat.BatchSearch(w.gen.queries, k, /*num_threads=*/1);
  return w;
}

double IdRecall(const std::vector<Neighbor>& result,
                const std::vector<Neighbor>& ground_truth) {
  std::set<idx_t> gt;
  for (const Neighbor& n : ground_truth) gt.insert(n.id);
  size_t hits = 0;
  for (const Neighbor& n : result) hits += gt.count(n.id);
  return static_cast<double>(hits) / static_cast<double>(gt.size());
}

double MeanRecall(const SongSearcher& searcher, const PqWorld& w, size_t k,
                  const SongSearchOptions& options) {
  double sum = 0.0;
  for (size_t q = 0; q < w.gen.queries.num(); ++q) {
    const auto result =
        searcher.Search(w.gen.queries.Row(static_cast<idx_t>(q)), k, options);
    sum += IdRecall(result, w.ground_truth[q]);
  }
  return sum / static_cast<double>(w.gen.queries.num());
}

/// Recall-parity check on one world: exact vs PQ+rerank at matched ef.
void CheckRecallParity(const PqWorld& w, Metric metric, size_t m) {
  constexpr size_t kK = 10;
  SongSearcher exact(&w.gen.points, &w.graph, metric);
  SongSearcher quantized(&w.gen.points, &w.graph, metric);
  PqOptions popts;
  popts.num_subquantizers = m;
  popts.train_iterations = 8;
  popts.num_threads = 1;
  ASSERT_TRUE(quantized.EnablePq(popts).ok());

  for (const size_t ef : {64u, 128u}) {
    SongSearchOptions options;
    options.queue_size = ef;
    const double exact_recall = MeanRecall(exact, w, kK, options);

    SongSearchOptions pq_options = options;
    pq_options.quant = QuantizationMode::kPq;
    // Rerank the full queue: the parity contract is about whether the ADC
    // traversal still *reaches* the true neighbors, so give the exact
    // rerank every candidate the traversal kept (production uses the
    // smaller auto pool and trades a little recall for traffic).
    pq_options.rerank_depth = ef;
    const double pq_recall = MeanRecall(quantized, w, kK, pq_options);

    // ISSUE acceptance bound: within 0.02 of exact at matched ef.
    EXPECT_GE(pq_recall, exact_recall - 0.02)
        << "m=" << m << " ef=" << ef << " exact=" << exact_recall
        << " pq=" << pq_recall;
  }
}

TEST(HarnessPqDifferential, RecallWithinEpsilonOfExactClusteredL2) {
  const PqWorld w = BuildWorld(/*dim=*/64, /*num_clusters=*/24, Metric::kL2,
                               /*seed=*/4201, /*k=*/10);
  CheckRecallParity(w, Metric::kL2, /*m=*/16);
}

TEST(HarnessPqDifferential, RecallWithinEpsilonOfExactClusteredL2Dim128) {
  const PqWorld w = BuildWorld(/*dim=*/128, /*num_clusters=*/40, Metric::kL2,
                               /*seed=*/4202, /*k=*/10);
  CheckRecallParity(w, Metric::kL2, /*m=*/16);
}

TEST(HarnessPqDifferential, RecallWithinEpsilonOfExactInnerProduct) {
  const PqWorld w = BuildWorld(/*dim=*/64, /*num_clusters=*/24,
                               Metric::kInnerProduct, /*seed=*/4203,
                               /*k=*/10);
  CheckRecallParity(w, Metric::kInnerProduct, /*m=*/16);
}

TEST(HarnessPqDifferential, QuantizationOffIsBitIdentical) {
  const PqWorld w = BuildWorld(/*dim=*/64, /*num_clusters=*/24, Metric::kL2,
                               /*seed=*/4204, /*k=*/10);
  SongSearcher plain(&w.gen.points, &w.graph, Metric::kL2);
  SongSearcher enabled(&w.gen.points, &w.graph, Metric::kL2);
  PqOptions popts;
  popts.num_subquantizers = 8;
  popts.train_iterations = 4;
  popts.num_threads = 1;
  ASSERT_TRUE(enabled.EnablePq(popts).ok());

  for (const size_t ef : {16u, 64u, 200u}) {
    SongSearchOptions options;
    options.queue_size = ef;  // options.quant stays kNone
    for (size_t q = 0; q < w.gen.queries.num(); ++q) {
      const float* query = w.gen.queries.Row(static_cast<idx_t>(q));
      const auto a = plain.Search(query, 10, options);
      const auto b = enabled.Search(query, 10, options);
      ASSERT_EQ(a.size(), b.size()) << "ef=" << ef << " query " << q;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id)
            << "ef=" << ef << " query " << q << " position " << i;
        // Bit-level: memcmp-grade equality of the float distances.
        ASSERT_EQ(std::memcmp(&a[i].dist, &b[i].dist, sizeof(float)), 0)
            << "ef=" << ef << " query " << q << " position " << i;
      }
    }
  }
}

TEST(HarnessPqDifferential, PqWithoutCodebookIsFailedPrecondition) {
  const PqWorld w = BuildWorld(/*dim=*/64, /*num_clusters=*/8, Metric::kL2,
                               /*seed=*/4205, /*k=*/5);
  SongSearcher searcher(&w.gen.points, &w.graph, Metric::kL2);
  SongSearchOptions options;
  options.quant = QuantizationMode::kPq;
  SongWorkspace ws;
  const auto result = searcher.TrySearch(w.gen.queries.Row(0), 5, options, &ws);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HarnessPqDifferential, EnablePqRejectsCosine) {
  const PqWorld w = BuildWorld(/*dim=*/64, /*num_clusters=*/8, Metric::kL2,
                               /*seed=*/4206, /*k=*/5);
  SongSearcher searcher(&w.gen.points, &w.graph, Metric::kCosine);
  PqOptions popts;
  popts.num_subquantizers = 8;
  const Status s = searcher.EnablePq(popts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace song
