// Structure-vs-oracle fuzzing: the production SMMH, bounded top-k heap,
// open-addressing set, Cuckoo filter and Bloom filter are driven through
// thousands of seed-derived randomized op sequences and compared against the
// std::multiset / std::unordered_set oracles in harness/oracles.h. Every
// failure message embeds the seed and round needed to replay it.

#include <cstdio>

#include "gtest/gtest.h"
#include "harness/fuzz.h"

namespace song::harness {
namespace {

/// Prints the active base seed once per run so any later failure — in any
/// suite — can be replayed from the log.
class HarnessSeedEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { std::printf("%s\n", SeedBanner().c_str()); }
};

const ::testing::Environment* const kSeedEnvironment =
    ::testing::AddGlobalTestEnvironment(new HarnessSeedEnvironment);

TEST(HarnessStructureFuzz, SymmetricMinMaxHeapMatchesOracle) {
  const DifferentialReport report = FuzzSmmhVsOracle(BaseSeed(), 300);
  EXPECT_GT(report.checks, 10000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessStructureFuzz, BoundedTopKMatchesOracle) {
  const DifferentialReport report = FuzzTopKVsOracle(BaseSeed(), 300);
  EXPECT_GT(report.checks, 10000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessStructureFuzz, HashTableVisitedMatchesOracle) {
  const DifferentialReport report =
      FuzzExactVisitedVsOracle(VisitedStructure::kHashTable, BaseSeed(), 150);
  EXPECT_GT(report.checks, 10000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessStructureFuzz, EpochArrayVisitedMatchesOracle) {
  const DifferentialReport report = FuzzExactVisitedVsOracle(
      VisitedStructure::kEpochArray, BaseSeed(), 150);
  EXPECT_GT(report.checks, 10000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessOpenAddressing, CapacitySaturationAndTombstoneChurn) {
  const DifferentialReport report =
      FuzzOpenAddressingSaturation(BaseSeed(), 120);
  EXPECT_GT(report.checks, 10000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessCuckoo, OneSidedErrorTerminationAndFpBound) {
  const DifferentialReport report = FuzzCuckooVsOracle(BaseSeed(), 100);
  EXPECT_GT(report.checks, 1000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

TEST(HarnessBloom, NoFalseNegativesFpBoundAndSaturation) {
  const DifferentialReport report = FuzzBloomVsOracle(BaseSeed(), 40);
  EXPECT_GT(report.checks, 1000u);
  EXPECT_EQ(report.failures, 0u) << report.first_divergence;
}

}  // namespace
}  // namespace song::harness
