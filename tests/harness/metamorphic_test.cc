// Metamorphic properties of the SONG search: relations that must hold
// between *pairs* of runs on systematically transformed inputs, independent
// of any oracle. These target exactly the silent-recall-degradation class of
// bug that example-based tests miss: each property compares whole result
// sets, so a subtly corrupted queue or visited set shows up as a broken
// relation even when every individual run looks plausible.

#include <algorithm>
#include <set>
#include <vector>

#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "harness/fuzz.h"
#include "harness/reference_search.h"
#include "song/song_searcher.h"

namespace song::harness {
namespace {

constexpr size_t kGroundTruthK = 10;

class HarnessMetamorphic : public ::testing::Test {
 protected:
  struct World {
    SyntheticData gen;
    FixedDegreeGraph graph;
    std::vector<std::vector<Neighbor>> ground_truth;  // per query, top-10
  };

  // Built once per suite; tests only read it, so --gtest_shuffle is safe.
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.name = "harness-metamorphic";
    spec.dim = 16;
    spec.num_points = 2000;
    spec.num_queries = 40;
    spec.num_clusters = 8;
    spec.seed = 77;  // deterministic; independent of SONG_FUZZ_SEED
    world_ = new World;
    world_->gen = GenerateSynthetic(spec);
    NswBuildOptions nsw;
    nsw.num_threads = 1;
    world_->graph = NswBuilder::Build(world_->gen.points, Metric::kL2, nsw);
    for (size_t q = 0; q < world_->gen.queries.num(); ++q) {
      world_->ground_truth.push_back(BruteForceTopK(
          world_->gen.points.num(), kGroundTruthK,
          [&](idx_t v) {
            return L2Sqr(world_->gen.queries.Row(static_cast<idx_t>(q)),
                         world_->gen.points.Row(v),
                         world_->gen.points.dim());
          }));
    }
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  /// Share of `result` within the ground-truth k-th distance — recall by
  /// distance, so an equally-close duplicate counts as a hit.
  static double DistanceRecall(const std::vector<Neighbor>& result,
                               const std::vector<Neighbor>& ground_truth) {
    const float threshold = ground_truth.back().dist + 1e-6f;
    size_t hits = 0;
    for (const Neighbor& n : result) hits += n.dist <= threshold ? 1 : 0;
    return static_cast<double>(hits) /
           static_cast<double>(ground_truth.size());
  }

  static double IdRecall(const std::vector<Neighbor>& result,
                         const std::vector<Neighbor>& ground_truth) {
    std::set<idx_t> gt;
    for (const Neighbor& n : ground_truth) gt.insert(n.id);
    size_t hits = 0;
    for (const Neighbor& n : result) hits += gt.count(n.id);
    return static_cast<double>(hits) / static_cast<double>(gt.size());
  }

  static double MeanRecall(const SongSearcher& searcher,
                           const SongSearchOptions& options, size_t k,
                           bool by_distance) {
    double sum = 0.0;
    for (size_t q = 0; q < world_->gen.queries.num(); ++q) {
      const auto result = searcher.Search(
          world_->gen.queries.Row(static_cast<idx_t>(q)), k, options);
      sum += by_distance
                 ? DistanceRecall(result, world_->ground_truth[q])
                 : IdRecall(result, world_->ground_truth[q]);
    }
    return sum / static_cast<double>(world_->gen.queries.num());
  }

  static World* world_;
};

HarnessMetamorphic::World* HarnessMetamorphic::world_ = nullptr;

TEST_F(HarnessMetamorphic, ShrinkingKIsPrefixOfLargerK) {
  SongSearcher searcher(&world_->gen.points, &world_->graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;  // fixed ef >= every k: identical search paths
  for (size_t q = 0; q < world_->gen.queries.num(); ++q) {
    const float* query = world_->gen.queries.Row(static_cast<idx_t>(q));
    const auto large = searcher.Search(query, 20, options);
    for (const size_t k : {1u, 3u, 10u}) {
      const auto small = searcher.Search(query, k, options);
      ASSERT_EQ(small.size(), std::min(k, large.size())) << "query " << q;
      for (size_t i = 0; i < small.size(); ++i) {
        EXPECT_TRUE(small[i] == large[i])
            << "query " << q << " k=" << k << " position " << i;
      }
    }
  }
}

TEST_F(HarnessMetamorphic, SelectedInsertionPreservesExactResults) {
  // §IV-D only skips candidates that are strictly worse than a full top-K;
  // such candidates can never enter topk later (its max only decreases) and
  // would terminate, not expand, when popped — so with an exact, ample
  // visited set the filter must not change the returned neighbors at all.
  SongSearcher searcher(&world_->gen.points, &world_->graph, Metric::kL2);
  SongSearchOptions plain;
  plain.queue_size = 64;
  plain.hash_capacity = world_->gen.points.num() + 1;
  SongSearchOptions selected = plain;
  selected.selected_insertion = true;
  for (size_t q = 0; q < world_->gen.queries.num(); ++q) {
    const float* query = world_->gen.queries.Row(static_cast<idx_t>(q));
    const auto a = searcher.Search(query, 10, plain);
    const auto b = searcher.Search(query, 10, selected);
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << "query " << q << " position " << i;
    }
  }
}

TEST_F(HarnessMetamorphic, VisitedDeletionKeepsRecallWithinTolerance) {
  // §IV-E changes which vertices get re-examined, so results may differ —
  // but the paper's claim is that recall is preserved. Hold it to that.
  SongSearcher searcher(&world_->gen.points, &world_->graph, Metric::kL2);
  SongSearchOptions sel = SongSearchOptions::HashTableSel();
  sel.queue_size = 64;
  SongSearchOptions seldel = SongSearchOptions::HashTableSelDel();
  seldel.queue_size = 64;
  const double recall_sel = MeanRecall(searcher, sel, 10, /*by_distance=*/false);
  const double recall_seldel =
      MeanRecall(searcher, seldel, 10, /*by_distance=*/false);
  EXPECT_NEAR(recall_sel, recall_seldel, 0.03)
      << "visited deletion moved recall from " << recall_sel << " to "
      << recall_seldel;
  EXPECT_GT(recall_seldel, 0.85);
}

TEST_F(HarnessMetamorphic, BloomRecallNeverExceedsExactVisited) {
  // A Bloom filter can only err toward "already visited", which prunes
  // exploration: on the same instance its recall must not beat the exact
  // hash table's.
  SongSearcher searcher(&world_->gen.points, &world_->graph, Metric::kL2);
  SongSearchOptions bloom = SongSearchOptions::Bloom();
  bloom.queue_size = 64;
  SongSearchOptions exact = bloom;
  exact.structure = VisitedStructure::kHashTable;
  exact.hash_capacity = world_->gen.points.num() + 1;
  const double recall_bloom =
      MeanRecall(searcher, bloom, 10, /*by_distance=*/false);
  const double recall_exact =
      MeanRecall(searcher, exact, 10, /*by_distance=*/false);
  EXPECT_LE(recall_bloom, recall_exact + 1e-9)
      << "bloom " << recall_bloom << " vs exact " << recall_exact;
  // The paper-sized filter (~9600 bits) must also stay useful, not just safe.
  EXPECT_GT(recall_bloom, 0.8);
}

TEST_F(HarnessMetamorphic, DuplicatingTrueNeighborsNeverLowersDistanceRecall) {
  // Append an exact duplicate of every query's true nearest neighbor, wired
  // next to its original. Measured by distance (a duplicate hit counts),
  // recall must not drop: the duplicates only add equally-good answers.
  const Dataset& points = world_->gen.points;
  const size_t n = points.num();
  const size_t dim = points.dim();
  const size_t degree = world_->graph.degree();

  std::set<idx_t> to_duplicate;
  for (const auto& gt : world_->ground_truth) to_duplicate.insert(gt[0].id);

  Dataset augmented(n + to_duplicate.size(), dim);
  for (idx_t v = 0; v < n; ++v) augmented.SetRow(v, points.Row(v));
  std::vector<std::vector<idx_t>> adjacency(n + to_duplicate.size());
  for (idx_t v = 0; v < n; ++v) adjacency[v] = world_->graph.Neighbors(v);
  idx_t next = static_cast<idx_t>(n);
  for (const idx_t original : to_duplicate) {
    augmented.SetRow(next, points.Row(original));
    adjacency[next] = world_->graph.Neighbors(original);
    adjacency[next].push_back(original);
    adjacency[original].push_back(next);
    ++next;
  }
  const FixedDegreeGraph augmented_graph =
      FixedDegreeGraph::FromAdjacency(adjacency, degree + 1);

  SongSearcher baseline(&world_->gen.points, &world_->graph, Metric::kL2);
  SongSearcher duplicated(&augmented, &augmented_graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  double recall_before = 0.0, recall_after = 0.0;
  for (size_t q = 0; q < world_->gen.queries.num(); ++q) {
    const float* query = world_->gen.queries.Row(static_cast<idx_t>(q));
    recall_before += DistanceRecall(baseline.Search(query, 10, options),
                                    world_->ground_truth[q]);
    recall_after += DistanceRecall(duplicated.Search(query, 10, options),
                                   world_->ground_truth[q]);
  }
  EXPECT_GE(recall_after, recall_before - 1e-9)
      << "duplicate insertion lowered aggregate distance-recall from "
      << recall_before << " to " << recall_after;
}

TEST_F(HarnessMetamorphic, IdenticalConfigurationsAreBitIdentical) {
  // Determinism is what makes every failure in this harness replayable:
  // the same query under the same options must be bit-identical, for all
  // five presets, including the probabilistic structures.
  SongSearcher searcher(&world_->gen.points, &world_->graph, Metric::kL2);
  const SongSearchOptions presets[] = {
      SongSearchOptions::HashTable(),     SongSearchOptions::HashTableSel(),
      SongSearchOptions::HashTableSelDel(), SongSearchOptions::Bloom(),
      SongSearchOptions::Cuckoo(),        SongSearchOptions::CpuEngineered()};
  for (const SongSearchOptions& preset : presets) {
    SongSearchOptions options = preset;
    options.queue_size = 48;
    for (size_t q = 0; q < 8; ++q) {
      const float* query = world_->gen.queries.Row(static_cast<idx_t>(q));
      const auto first = searcher.Search(query, 10, options);
      const auto second = searcher.Search(query, 10, options);
      ASSERT_EQ(first.size(), second.size())
          << options.Name() << " query " << q;
      for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(first[i] == second[i])
            << options.Name() << " query " << q << " position " << i;
      }
    }
  }
}

}  // namespace
}  // namespace song::harness
