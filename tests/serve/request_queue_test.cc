// Tests for the serving tier's admission queue and continuous-batching
// claim primitive (src/serve/request_queue.h): FIFO claim order, key
// compatibility grouping, the linger that tops up in-flight batches,
// explicit backpressure (full / closed), and the drain protocol.

#include <memory>
#include <thread>
#include <vector>

#include "core/timer.h"
#include "gtest/gtest.h"
#include "serve/request_queue.h"

namespace song::serve {
namespace {

std::unique_ptr<PendingRequest> MakeRequest(uint64_t id, uint32_t k = 10,
                                            uint32_t ef = 64,
                                            uint64_t deadline_us = 0) {
  auto r = std::make_unique<PendingRequest>();
  r->request_id = id;
  r->k = k;
  r->queue_size = ef;
  r->deadline_us = deadline_us;
  r->query = {1.0f, 2.0f};
  return r;
}

TEST(RequestQueue, ClaimsInArrivalOrder) {
  RequestQueue queue(8);
  for (uint64_t i = 0; i < 5; ++i) {
    auto r = MakeRequest(i);
    ASSERT_TRUE(queue.Push(r).ok());
  }
  std::vector<std::unique_ptr<PendingRequest>> out(8);
  const size_t n = queue.PopBatch(out.data(), 8, /*max_wait_us=*/0);
  ASSERT_EQ(n, 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i]->request_id, i);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(RequestQueue, FullQueueIsResourceExhausted) {
  RequestQueue queue(2);
  auto a = MakeRequest(1);
  auto b = MakeRequest(2);
  auto c = MakeRequest(3);
  ASSERT_TRUE(queue.Push(a).ok());
  ASSERT_TRUE(queue.Push(b).ok());
  const Status refused = queue.Push(c);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // Refusal leaves ownership with the caller — it still has to settle the
  // request with a shed response.
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->request_id, 3u);
}

TEST(RequestQueue, ClosedQueueIsUnavailable) {
  RequestQueue queue(4);
  queue.Close();
  auto r = MakeRequest(1);
  const Status refused = queue.Push(r);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  ASSERT_NE(r, nullptr);
}

TEST(RequestQueue, IncompatibleKeysStayQueued) {
  RequestQueue queue(8);
  auto a = MakeRequest(1, /*k=*/10, /*ef=*/64);
  auto b = MakeRequest(2, /*k=*/10, /*ef=*/128);  // different ef
  auto c = MakeRequest(3, /*k=*/10, /*ef=*/64);
  ASSERT_TRUE(queue.Push(a).ok());
  ASSERT_TRUE(queue.Push(b).ok());
  ASSERT_TRUE(queue.Push(c).ok());
  std::vector<std::unique_ptr<PendingRequest>> out(8);
  size_t n = queue.PopBatch(out.data(), 8, 0);
  ASSERT_EQ(n, 2u);  // 1 and 3 share the key; 2 must wait its turn
  EXPECT_EQ(out[0]->request_id, 1u);
  EXPECT_EQ(out[1]->request_id, 3u);
  n = queue.PopBatch(out.data(), 8, 0);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0]->request_id, 2u);
}

TEST(RequestQueue, DeadlineFreeNeverBatchesWithDeadlineCarrying) {
  RequestQueue queue(8);
  auto a = MakeRequest(1, 10, 64, /*deadline_us=*/0);
  auto b = MakeRequest(2, 10, 64, /*deadline_us=*/500);
  ASSERT_TRUE(queue.Push(a).ok());
  ASSERT_TRUE(queue.Push(b).ok());
  std::vector<std::unique_ptr<PendingRequest>> out(8);
  const size_t n = queue.PopBatch(out.data(), 8, 0);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0]->request_id, 1u);
}

TEST(RequestQueue, LingerPicksUpLateArrivals) {
  RequestQueue queue(8);
  auto first = MakeRequest(1);
  ASSERT_TRUE(queue.Push(first).ok());
  std::thread late([&queue]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto r = MakeRequest(2);
    ASSERT_TRUE(queue.Push(r).ok());
  });
  std::vector<std::unique_ptr<PendingRequest>> out(8);
  // A generous linger (500 ms) so the 5 ms late arrival lands well inside
  // it even on a loaded CI machine; the batch must contain both.
  const size_t n = queue.PopBatch(out.data(), 8, 500000);
  late.join();
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(out[0]->request_id, 1u);
  EXPECT_EQ(out[1]->request_id, 2u);
}

TEST(RequestQueue, ZeroLingerReturnsImmediately) {
  RequestQueue queue(8);
  auto r = MakeRequest(1);
  ASSERT_TRUE(queue.Push(r).ok());
  Timer timer;
  std::vector<std::unique_ptr<PendingRequest>> out(8);
  const size_t n = queue.PopBatch(out.data(), 8, 0);
  EXPECT_EQ(n, 1u);
  EXPECT_LT(timer.ElapsedMicros(), 100000.0);
}

TEST(RequestQueue, FullBatchSkipsTheLinger) {
  RequestQueue queue(8);
  for (uint64_t i = 0; i < 3; ++i) {
    auto r = MakeRequest(i);
    ASSERT_TRUE(queue.Push(r).ok());
  }
  Timer timer;
  std::vector<std::unique_ptr<PendingRequest>> out(3);
  // max_batch already satisfied by queued work: the (long) linger must not
  // be paid at all.
  const size_t n = queue.PopBatch(out.data(), 3, 5000000);
  EXPECT_EQ(n, 3u);
  EXPECT_LT(timer.ElapsedMicros(), 1000000.0);
}

TEST(RequestQueue, CloseWakesBlockedWorkers) {
  RequestQueue queue(8);
  std::atomic<int> exited{0};
  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&queue, &exited]() {
      std::vector<std::unique_ptr<PendingRequest>> out(4);
      while (queue.PopBatch(out.data(), 4, 1000) != 0) {
        for (auto& r : out) r.reset();
      }
      exited.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(RequestQueue, TakeAllDrainsEverything) {
  RequestQueue queue(8);
  for (uint64_t i = 0; i < 4; ++i) {
    auto r = MakeRequest(i, 10, 64, i % 2 == 0 ? 0 : 100);
    ASSERT_TRUE(queue.Push(r).ok());
  }
  queue.Close();
  const auto taken = queue.TakeAll();
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(RequestQueue, ConcurrentPushersAndClaimersConserveRequests) {
  RequestQueue queue(64);
  constexpr int kPushers = 4;
  constexpr int kPerPusher = 200;
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> claimed{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> claimers;
  claimers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    claimers.emplace_back([&]() {
      std::vector<std::unique_ptr<PendingRequest>> out(16);
      for (;;) {
        const size_t n = queue.PopBatch(out.data(), 16, 200);
        if (n == 0) return;  // closed and empty
        claimed.fetch_add(n);
        for (size_t i = 0; i < n; ++i) out[i].reset();
      }
    });
  }
  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&, p]() {
      for (int i = 0; i < kPerPusher; ++i) {
        auto r = MakeRequest(static_cast<uint64_t>(p) * 1000 + i);
        if (queue.Push(r).ok()) {
          pushed.fetch_add(1);
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pushers) t.join();
  done_pushing.store(true);
  queue.Close();
  for (std::thread& t : claimers) t.join();
  // Every push either entered the queue (and was claimed before or after
  // Close) or was refused with a Status — nothing vanishes.
  EXPECT_EQ(pushed.load() + refused.load(),
            static_cast<uint64_t>(kPushers) * kPerPusher);
  EXPECT_EQ(claimed.load() + queue.TakeAll().size(), pushed.load());
}

}  // namespace
}  // namespace song::serve
