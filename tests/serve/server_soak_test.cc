// Chaos soak for the serving front-end (ISSUE acceptance gate): concurrent
// clients over loopback, a fault-injection spec arming the serve.* sites,
// abrupt mid-stream disconnects, hostile frames, and a graceful drain fired
// in the middle of traffic. The single invariant everything rolls up to:
// every accepted request terminates in exactly one accounted outcome —
//
//   accepted == ok + shed + deadline + error
//
// and the song.req.* pipeline saw exactly one record per accepted request.
//
// Runtime scales with SONG_SOAK_SECONDS (default 2 s here; the CI
// serve-soak leg runs 60 s under ASan and TSan).

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/fault_injection.h"
#include "core/random.h"
#include "core/timer.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "song/song_searcher.h"

namespace song::serve {
namespace {

double SoakSeconds() {
  const char* env = std::getenv("SONG_SOAK_SECONDS");
  if (env == nullptr) return 2.0;
  const double s = std::atof(env);
  return s > 0 ? s : 2.0;
}

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One chaotic client: loops connect -> a burst of requests with randomized
/// shapes -> one of {read responses, vanish abruptly, send garbage}.
void ChaosClient(uint16_t port, size_t dim, double until_s, uint64_t seed,
                 std::atomic<uint64_t>* requests_sent) {
  RandomEngine rng(seed);
  Timer clock;
  std::vector<float> query(dim);
  while (clock.ElapsedSeconds() < until_s) {
    const int fd = ConnectLoopback(port);
    if (fd < 0) {
      // Draining or over max_connections: back off briefly and retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    FrameTransport transport(fd, /*io_timeout_ms=*/2000);
    const size_t burst = 1 + rng.Next() % 8;
    const uint32_t fate = static_cast<uint32_t>(rng.Next() % 10);
    size_t sent = 0;
    for (size_t i = 0; i < burst; ++i) {
      SearchRequestFrame request;
      request.client_tag = rng.Next();
      request.k = 1 + static_cast<uint32_t>(rng.Next() % 10);
      request.queue_size = rng.Next() % 3 == 0 ? 32 : 0;
      request.deadline_us = rng.Next() % 4 == 0 ? 1 + rng.Next() % 3000 : 0;
      request.cost_budget = rng.Next() % 5 == 0 ? 100 : 0;
      for (float& v : query) {
        v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
      }
      request.query = query;
      if (rng.Next() % 16 == 0) request.k = 0;  // invalid on purpose
      std::vector<uint8_t> wire;
      EncodeSearchRequest(request, &wire);
      if (!transport.WriteBytes(wire).ok()) break;
      ++sent;
    }
    requests_sent->fetch_add(sent, std::memory_order_relaxed);
    if (fate < 6) {
      // Well-behaved: read every response (any Status is acceptable).
      for (size_t i = 0; i < sent; ++i) {
        if (!transport.ReadFrame().ok()) break;
      }
    } else if (fate < 9) {
      // Vanish with responses in flight: the server must still settle
      // every one of these requests.
    } else {
      // Turn hostile: garbage bytes mid-stream.
      std::vector<uint8_t> junk(16 + rng.Next() % 64);
      for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.Next());
      const Status ignored = transport.WriteBytes(junk);
      if (!ignored.ok() && sent == 0) {
        // Nothing was in flight and the write failed: connection is dead.
      }
    }
    ::close(fd);
  }
}

TEST(ServeSoak, ChaosTrafficConservesEveryOutcome) {
  SyntheticSpec spec;
  spec.name = "soak";
  spec.dim = 12;
  spec.num_points = 1200;
  spec.num_queries = 4;
  spec.seed = 31337;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.degree = 8;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  const SongSearcher searcher(&gen.points, &graph, Metric::kL2);

  // Arm every serve.* fault site at low probability so all the injected
  // failure paths are exercised without drowning out real traffic.
  fault::ScopedFaultSpec faults(
      "serve.dispatch=0.03,serve.write=0.02,serve.accept=0.05",
      /*seed=*/20260808);

  ServerOptions options;
  options.num_workers = 2;
  options.engine_threads = 2;
  options.queue_capacity = 64;  // small enough that bursts hit the shed path
  options.max_batch = 8;
  options.max_wait_us = 500;
  options.io_timeout_ms = 2000;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  const double soak_s = SoakSeconds();
  constexpr size_t kClients = 6;
  std::atomic<uint64_t> requests_sent{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(ChaosClient, server.port(), spec.dim, soak_s,
                         0xabcdef12u + 977 * c, &requests_sent);
  }

  // Fire the graceful drain in the middle of live traffic: clients keep
  // hammering (their sends start failing / getting shed) while the server
  // flushes and answers everything already accepted.
  std::this_thread::sleep_for(std::chrono::duration<double>(soak_s * 0.6));
  ASSERT_TRUE(server.Drain().ok());
  for (std::thread& t : clients) t.join();

  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, c.ok + c.shed + c.deadline + c.error)
      << "conservation violated: accepted=" << c.accepted << " ok=" << c.ok
      << " shed=" << c.shed << " deadline=" << c.deadline
      << " error=" << c.error;
  // The soak is vacuous if nothing made it in.
  EXPECT_GT(requests_sent.load(), 0u);
  EXPECT_GT(c.accepted, 0u);
  // Exactly one request record per accepted request (no engine
  // double-count, no dropped settle).
  EXPECT_EQ(registry.GetHistogram("song.req.total_us").Count(), c.accepted);
  // Metric counters agree with the atomic mirrors.
  EXPECT_EQ(registry.GetCounter("song.serve.accepted").Value(), c.accepted);
  EXPECT_EQ(registry.GetCounter("song.serve.outcome.ok").Value(), c.ok);
  EXPECT_EQ(registry.GetCounter("song.serve.outcome.shed").Value(), c.shed);
  EXPECT_EQ(registry.GetCounter("song.serve.outcome.deadline").Value(),
            c.deadline);
  EXPECT_EQ(registry.GetCounter("song.serve.outcome.error").Value(),
            c.error);
}

TEST(ServeSoak, RepeatedDrainCyclesStayClean) {
  // Start/drain several servers back to back: every cycle must release its
  // port, threads and connections (leaks/races surface under the
  // sanitizer legs).
  SyntheticSpec spec;
  spec.name = "soak-cycle";
  spec.dim = 8;
  spec.num_points = 400;
  spec.num_queries = 2;
  spec.seed = 99;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.degree = 6;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  const SongSearcher searcher(&gen.points, &graph, Metric::kL2);

  for (int cycle = 0; cycle < 5; ++cycle) {
    ServerOptions options;
    options.num_workers = 1;
    options.engine_threads = 1;
    SongServer server(&searcher, options, /*registry=*/nullptr);
    ASSERT_TRUE(server.Start().ok());
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    FrameTransport transport(fd, 2000);
    SearchRequestFrame request;
    request.client_tag = static_cast<uint64_t>(cycle);
    request.k = 3;
    request.query.assign(spec.dim, 0.25f);
    std::vector<uint8_t> wire;
    EncodeSearchRequest(request, &wire);
    ASSERT_TRUE(transport.WriteBytes(wire).ok());
    const auto frame = transport.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ::close(fd);
    ASSERT_TRUE(server.Drain().ok());
    const ServeCounterSnapshot c = server.counters();
    EXPECT_EQ(c.accepted, c.ok + c.shed + c.deadline + c.error);
  }
}

}  // namespace
}  // namespace song::serve
