// In-process integration tests for the framed TCP serving front-end
// (src/serve/server.h): exact results against a direct engine run,
// the outcome taxonomy (ok / shed / deadline / error), overload shedding,
// graceful drain, hostile streams, and the conservation invariant
//
//   accepted == ok + shed + deadline + error
//
// after every scenario. All sockets are loopback on kernel-assigned ports.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/timer.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "song/batch_engine.h"
#include "song/song_searcher.h"

namespace song::serve {
namespace {

struct ServeFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;

  static const ServeFixture& Get() {
    static ServeFixture* f = [] {
      auto* fx = new ServeFixture();
      SyntheticSpec spec;
      spec.name = "serve";
      spec.dim = 16;
      spec.num_points = 1500;
      spec.num_queries = 32;
      spec.seed = 424242;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 8;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      return fx;
    }();
    return *f;
  }
};

/// Minimal framed-protocol client: one blocking connection driven from the
/// test thread.
class TestClient {
 public:
  explicit TestClient(uint16_t port, int io_timeout_ms = 5000) {
    Connect(port, io_timeout_ms);
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status SendSearch(uint64_t tag, const std::vector<float>& query,
                    uint32_t k, uint32_t ef = 0, uint64_t deadline_us = 0,
                    uint64_t cost_budget = 0) {
    SearchRequestFrame request;
    request.client_tag = tag;
    request.k = k;
    request.queue_size = ef;
    request.deadline_us = deadline_us;
    request.cost_budget = cost_budget;
    request.query = query;
    std::vector<uint8_t> wire;
    EncodeSearchRequest(request, &wire);
    return transport_->WriteBytes(wire);
  }

  Status SendRaw(const std::vector<uint8_t>& bytes) {
    return transport_->WriteBytes(bytes);
  }

  StatusOr<SearchResponseFrame> ReadResponse() {
    StatusOr<Frame> frame = transport_->ReadFrame();
    SONG_RETURN_IF_ERROR(frame.status());
    if (frame.value().type != FrameType::kSearchResponse) {
      return Status::Internal("unexpected frame type");
    }
    return DecodeSearchResponse(frame.value().payload.data(),
                                frame.value().payload.size());
  }

  StatusOr<Frame> ReadFrame() { return transport_->ReadFrame(); }

  void AbruptClose() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  void Connect(uint16_t port, int io_timeout_ms) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    transport_ = std::make_unique<FrameTransport>(fd_, io_timeout_ms);
  }

  int fd_ = -1;
  std::unique_ptr<FrameTransport> transport_;
};

void ExpectConservation(const SongServer& server) {
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, c.ok + c.shed + c.deadline + c.error)
      << "accepted=" << c.accepted << " ok=" << c.ok << " shed=" << c.shed
      << " deadline=" << c.deadline << " error=" << c.error;
}

std::vector<float> QueryRow(size_t i) {
  const ServeFixture& fx = ServeFixture::Get();
  const float* row = fx.queries.Row(static_cast<idx_t>(i % fx.queries.num()));
  return std::vector<float>(row, row + fx.queries.dim());
}

TEST(ServeServer, ResultsMatchDirectEngineRun) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  options.engine_threads = 1;
  options.max_wait_us = 0;  // no linger: deterministic single-query batches
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kK = 10;
  const BatchEngine direct(&searcher, 1);
  SongSearchOptions direct_options;
  direct_options.queue_size = options.default_queue_size;
  const auto expected =
      direct.TrySearch(fx.queries, kK, direct_options, {}, {});
  ASSERT_TRUE(expected.ok());

  TestClient client(server.port());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    ASSERT_TRUE(client.SendSearch(q, QueryRow(q), kK).ok());
    const auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().client_tag, q);
    EXPECT_EQ(response.value().status_code, 0);
    ASSERT_EQ(response.value().results.size(),
              expected.value().results[q].size());
    for (size_t i = 0; i < response.value().results.size(); ++i) {
      EXPECT_EQ(response.value().results[i].id,
                expected.value().results[q][i].id)
          << "query " << q << " rank " << i;
    }
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, fx.queries.num());
  EXPECT_EQ(c.ok, fx.queries.num());
  ExpectConservation(server);
}

TEST(ServeServer, PingPongAndStatusz) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  std::vector<uint8_t> ping;
  AppendFrame(FrameType::kPing, nullptr, 0, &ping);
  ASSERT_TRUE(client.SendRaw(ping).ok());
  auto pong = client.ReadFrame();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().type, FrameType::kPong);

  std::vector<uint8_t> statusz;
  AppendFrame(FrameType::kStatuszRequest, nullptr, 0, &statusz);
  ASSERT_TRUE(client.SendRaw(statusz).ok());
  auto dump = client.ReadFrame();
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump.value().type, FrameType::kStatuszResponse);
  const std::string json(
      reinterpret_cast<const char*>(dump.value().payload.data()),
      dump.value().payload.size());
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\""), std::string::npos);
  ASSERT_TRUE(server.Drain().ok());
  ExpectConservation(server);
}

TEST(ServeServer, ExpiredDeadlineSettlesAsDeadlineOutcome) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  // The 20 ms linger guarantees the claim happens long after a 1 us
  // deadline expired, making the queue-expiry path deterministic.
  options.max_wait_us = 20000;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.SendSearch(9, QueryRow(0), 10, 0, /*deadline_us=*/1)
                  .ok());
  const auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status_code,
            static_cast<int32_t>(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(response.value().results.empty());
  ASSERT_TRUE(server.Drain().ok());
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.deadline, 1u);
  ExpectConservation(server);
}

TEST(ServeServer, QueueFullShedsImmediatelyAndDrainShedsTheRest) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 0;  // nothing claims: requests sit in the queue
  options.queue_capacity = 2;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  for (uint64_t tag = 0; tag < 3; ++tag) {
    ASSERT_TRUE(client.SendSearch(tag, QueryRow(tag), 5).ok());
  }
  // Only the over-capacity request answers now — with the retryable shed.
  const auto shed = client.ReadResponse();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().client_tag, 2u);
  EXPECT_EQ(shed.value().status_code,
            static_cast<int32_t>(StatusCode::kUnavailable));

  // Drain must answer the two still queued (shed, never silently dropped).
  ASSERT_TRUE(server.Drain().ok());
  for (int i = 0; i < 2; ++i) {
    const auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status_code,
              static_cast<int32_t>(StatusCode::kUnavailable));
  }
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, 3u);
  EXPECT_EQ(c.shed, 3u);
  ExpectConservation(server);
}

TEST(ServeServer, DrainingShedsNewRequests) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  // A ping round trip first: proves the connection is accepted and its
  // reader is live before the drain flips on (otherwise the connection
  // could still be sitting in the listen backlog when the accept loop
  // exits, and the request would never be read at all).
  std::vector<uint8_t> ping;
  AppendFrame(FrameType::kPing, nullptr, 0, &ping);
  ASSERT_TRUE(client.SendRaw(ping).ok());
  ASSERT_TRUE(client.ReadFrame().ok());

  server.RequestDrain();
  ASSERT_TRUE(client.SendSearch(1, QueryRow(0), 5).ok());
  const auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status_code,
            static_cast<int32_t>(StatusCode::kUnavailable));
  ASSERT_TRUE(server.Drain().ok());
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.shed, 1u);
  ExpectConservation(server);
}

TEST(ServeServer, InvalidRequestsSettleAsTypedErrors) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  // k = 0 and dim mismatch: refused per-request, connection stays healthy.
  ASSERT_TRUE(client.SendSearch(1, QueryRow(0), /*k=*/0).ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code,
            static_cast<int32_t>(StatusCode::kInvalidArgument));

  std::vector<float> wrong_dim(fx.data.dim() + 3, 0.5f);
  ASSERT_TRUE(client.SendSearch(2, wrong_dim, 5).ok());
  response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code,
            static_cast<int32_t>(StatusCode::kInvalidArgument));

  // The connection survived both refusals: a valid request still works.
  ASSERT_TRUE(client.SendSearch(3, QueryRow(0), 5).ok());
  response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, 0);

  ASSERT_TRUE(server.Drain().ok());
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, 3u);
  EXPECT_EQ(c.error, 2u);
  EXPECT_EQ(c.ok, 1u);
  ExpectConservation(server);
}

TEST(ServeServer, HostileStreamClosesConnectionWithoutCrashing) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient garbage(server.port());
    std::vector<uint8_t> junk(64);
    for (size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<uint8_t>(i * 37 + 11);
    }
    ASSERT_TRUE(garbage.SendRaw(junk).ok());
    // The server hangs up on the corrupt stream (EOF at our end).
    const auto frame = garbage.ReadFrame();
    EXPECT_FALSE(frame.ok());
  }
  EXPECT_GE(registry.GetCounter("song.serve.frames.bad").Value(), 1u);

  // The server is still healthy for well-formed clients.
  TestClient client(server.port());
  ASSERT_TRUE(client.SendSearch(1, QueryRow(0), 5).ok());
  const auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status_code, 0);
  ASSERT_TRUE(server.Drain().ok());
  ExpectConservation(server);
}

TEST(ServeServer, MidFlightDisconnectStillSettlesEveryRequest) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  options.max_wait_us = 10000;  // requests sit in the linger window
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient client(server.port());
    for (uint64_t tag = 0; tag < 4; ++tag) {
      ASSERT_TRUE(client.SendSearch(tag, QueryRow(tag), 5).ok());
    }
    // Wait until the server has decoded (accepted) all four — only then is
    // "vanish with requests in flight" the scenario under test.
    Timer wait;
    while (server.counters().accepted < 4 &&
           wait.ElapsedSeconds() < 10.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.counters().accepted, 4u);
    client.AbruptClose();  // vanish with 4 requests in flight
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServeCounterSnapshot c = server.counters();
  EXPECT_EQ(c.accepted, 4u);
  ExpectConservation(server);
}

TEST(ServeServer, ServerStampsFullLifecycleTimelines) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  SongServer server(&searcher, options, &registry);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  constexpr uint64_t kRequests = 6;
  for (uint64_t tag = 0; tag < kRequests; ++tag) {
    ASSERT_TRUE(client.SendSearch(tag, QueryRow(tag), 5).ok());
    const auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
  }
  ASSERT_TRUE(server.Drain().ok());
  // Exactly one song.req.* record per accepted request — the engine's
  // per-request lifecycle is disabled on the serving path, so records are
  // not double-counted.
  EXPECT_EQ(registry.GetHistogram("song.req.total_us").Count(), kRequests);
  EXPECT_EQ(registry.GetCounter("song.serve.accepted").Value(), kRequests);
  ExpectConservation(server);
}

TEST(ServeServer, StartAfterDrainIsRefusedAndDrainIsIdempotent) {
  const ServeFixture& fx = ServeFixture::Get();
  const SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  ServerOptions options;
  options.num_workers = 1;
  SongServer server(&searcher, options, /*registry=*/nullptr);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_FALSE(server.Start().ok());  // double start
  ASSERT_TRUE(server.Drain().ok());
  ASSERT_TRUE(server.Drain().ok());  // idempotent
  ExpectConservation(server);
}

}  // namespace
}  // namespace song::serve
