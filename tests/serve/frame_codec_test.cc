// Wire-format tests for the serving front-end's frame codec
// (src/serve/frame.h): round trips, the typed-error taxonomy for
// truncated / oversized / hostile-length input, and a seeded corpus of
// 240 mutated frames asserting the decoder always returns a Status —
// never crashes, never allocates from a hostile length field.

#include <cstring>
#include <string>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "serve/frame.h"

namespace song::serve {
namespace {

std::vector<uint8_t> EncodedRequest() {
  SearchRequestFrame request;
  request.client_tag = 0xfeedbeefcafe1234ULL;
  request.k = 10;
  request.queue_size = 64;
  request.deadline_us = 2500;
  request.cost_budget = 4096;
  request.query = {1.0f, -2.5f, 3.25f, 0.0f};
  std::vector<uint8_t> wire;
  EncodeSearchRequest(request, &wire);
  return wire;
}

std::vector<uint8_t> EncodedResponse() {
  SearchResponseFrame response;
  response.client_tag = 77;
  response.status_code = 0;
  response.degraded = true;
  response.queue_us = 12.5f;
  response.search_us = 440.0f;
  response.message = "ok";
  response.results = {{0.5f, 3}, {1.5f, 9}, {2.5f, 1}};
  std::vector<uint8_t> wire;
  EncodeSearchResponse(response, &wire);
  return wire;
}

/// Runs the decode path a connection reader runs: header first, then the
/// typed payload decoder for the frame type. Must return, never crash.
void DecodeAnything(const std::vector<uint8_t>& wire) {
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  if (!header.ok()) return;
  if (wire.size() < kFrameHeaderBytes + header.value().payload_len) return;
  const uint8_t* payload = wire.data() + kFrameHeaderBytes;
  const size_t len = header.value().payload_len;
  switch (header.value().type) {
    case FrameType::kSearchRequest: {
      const auto decoded = DecodeSearchRequest(payload, len);
      (void)decoded.ok();
      break;
    }
    case FrameType::kSearchResponse: {
      const auto decoded = DecodeSearchResponse(payload, len);
      (void)decoded.ok();
      break;
    }
    default:
      break;
  }
}

TEST(FrameCodec, SearchRequestRoundTrip) {
  const std::vector<uint8_t> wire = EncodedRequest();
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, FrameType::kSearchRequest);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + header.value().payload_len);
  const auto decoded = DecodeSearchRequest(wire.data() + kFrameHeaderBytes,
                                           header.value().payload_len);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().client_tag, 0xfeedbeefcafe1234ULL);
  EXPECT_EQ(decoded.value().k, 10u);
  EXPECT_EQ(decoded.value().queue_size, 64u);
  EXPECT_EQ(decoded.value().deadline_us, 2500u);
  EXPECT_EQ(decoded.value().cost_budget, 4096u);
  ASSERT_EQ(decoded.value().query.size(), 4u);
  EXPECT_EQ(decoded.value().query[1], -2.5f);
}

TEST(FrameCodec, SearchResponseRoundTrip) {
  const std::vector<uint8_t> wire = EncodedResponse();
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, FrameType::kSearchResponse);
  const auto decoded = DecodeSearchResponse(wire.data() + kFrameHeaderBytes,
                                            header.value().payload_len);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().client_tag, 77u);
  EXPECT_TRUE(decoded.value().degraded);
  EXPECT_EQ(decoded.value().message, "ok");
  ASSERT_EQ(decoded.value().results.size(), 3u);
  EXPECT_EQ(decoded.value().results[2].id, 1u);
  EXPECT_EQ(decoded.value().results[2].dist, 2.5f);
}

TEST(FrameCodec, TruncatedHeaderIsDataLoss) {
  const std::vector<uint8_t> wire = EncodedRequest();
  const auto header = DecodeFrameHeader(wire.data(), kFrameHeaderBytes - 1);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, BadMagicIsDataLoss) {
  std::vector<uint8_t> wire = EncodedRequest();
  wire[0] ^= 0xff;
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, UnknownTypeIsDataLoss) {
  std::vector<uint8_t> wire = EncodedRequest();
  wire[4] = 0xee;
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, WrongVersionIsDataLoss) {
  std::vector<uint8_t> wire = EncodedRequest();
  wire[5] = kProtocolVersion + 1;
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, HostilePayloadLengthIsDataLossBeforeAllocation) {
  std::vector<uint8_t> wire = EncodedRequest();
  const uint32_t hostile = 0xffffffffu;  // 4 GiB claim in a 12-byte header
  std::memcpy(wire.data() + 8, &hostile, 4);
  const auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, HostileQueryDimIsDataLoss) {
  SearchRequestFrame request;
  request.k = 1;
  request.query = {1.0f};
  std::vector<uint8_t> wire;
  EncodeSearchRequest(request, &wire);
  // Stomp the dim field (payload offset 32) with a claim far beyond the
  // actual bytes; the decoder must refuse before sizing anything by it.
  const uint32_t hostile = kMaxQueryDim + 1;
  std::memcpy(wire.data() + kFrameHeaderBytes + 32, &hostile, 4);
  const auto decoded = DecodeSearchRequest(wire.data() + kFrameHeaderBytes,
                                           wire.size() - kFrameHeaderBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, DimLengthMismatchIsDataLoss) {
  std::vector<uint8_t> wire = EncodedRequest();
  const uint32_t lies = 3;  // payload actually carries 4 floats
  std::memcpy(wire.data() + kFrameHeaderBytes + 32, &lies, 4);
  const auto decoded = DecodeSearchRequest(wire.data() + kFrameHeaderBytes,
                                           wire.size() - kFrameHeaderBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodec, UnknownRequestFlagsAreInvalidArgument) {
  std::vector<uint8_t> wire = EncodedRequest();
  wire[kFrameHeaderBytes + 36] = 0x01;
  const auto decoded = DecodeSearchRequest(wire.data() + kFrameHeaderBytes,
                                           wire.size() - kFrameHeaderBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodec, ZeroDimIsInvalidArgument) {
  std::vector<uint8_t> wire = EncodedRequest();
  const uint32_t zero = 0;
  std::memcpy(wire.data() + kFrameHeaderBytes + 32, &zero, 4);
  const auto decoded = DecodeSearchRequest(
      wire.data() + kFrameHeaderBytes, kFrameHeaderBytes + 28);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodec, HostileResponseCountsAreDataLoss) {
  std::vector<uint8_t> wire = EncodedResponse();
  const uint32_t hostile = kMaxResponseResults + 7;
  std::memcpy(wire.data() + kFrameHeaderBytes + 28, &hostile, 4);
  const auto decoded = DecodeSearchResponse(wire.data() + kFrameHeaderBytes,
                                            wire.size() - kFrameHeaderBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// The seed-driven corpus: 3 pristine frames x 4 mutation families x 20
// variants each = 240 hostile inputs through the full reader decode path.
// The invariant under test is narrow and absolute: a typed Status or a
// valid decode, never a crash, hang, or sanitizer finding.
TEST(FrameCodec, MutationCorpusNeverCrashes) {
  std::vector<std::vector<uint8_t>> pristine;
  pristine.push_back(EncodedRequest());
  pristine.push_back(EncodedResponse());
  std::vector<uint8_t> ping;
  AppendFrame(FrameType::kPing, nullptr, 0, &ping);
  pristine.push_back(ping);

  RandomEngine rng(0x534e4746u);  // "SNGF"
  size_t cases = 0;
  for (const std::vector<uint8_t>& base : pristine) {
    for (int variant = 0; variant < 20; ++variant) {
      // Family 1: truncation at every kind of boundary.
      {
        std::vector<uint8_t> wire = base;
        wire.resize(rng.Next() % (wire.size() + 1));
        DecodeAnything(wire);
        ++cases;
      }
      // Family 2: single-byte bitflip.
      {
        std::vector<uint8_t> wire = base;
        if (!wire.empty()) {
          wire[rng.Next() % wire.size()] ^=
              static_cast<uint8_t>(1u << (rng.Next() % 8));
        }
        DecodeAnything(wire);
        ++cases;
      }
      // Family 3: hostile length fields — header payload_len and, for
      // typed payloads, the interior count fields.
      {
        std::vector<uint8_t> wire = base;
        const uint32_t hostile = static_cast<uint32_t>(rng.Next());
        const size_t target = 8 + 4 * (rng.Next() % 12);
        if (wire.size() >= target + 4) {
          std::memcpy(wire.data() + target, &hostile, 4);
        }
        DecodeAnything(wire);
        ++cases;
      }
      // Family 4: random garbage appended / prepended.
      {
        std::vector<uint8_t> wire = base;
        const size_t extra = 1 + rng.Next() % 64;
        for (size_t i = 0; i < extra; ++i) {
          wire.push_back(static_cast<uint8_t>(rng.Next()));
        }
        if (rng.Next() % 2 == 0) {
          wire.insert(wire.begin(), static_cast<uint8_t>(rng.Next()));
        }
        DecodeAnything(wire);
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 200u) << "corpus shrank below the contract";
}

}  // namespace
}  // namespace song::serve
