#include "core/status.h"

#include <string>

#include "gtest/gtest.h"

namespace song {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(Status::CodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(Status::CodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(Status::CodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(Status::CodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(Status::CodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(Status::CodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(Status::CodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(Status::CodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(Status::CodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(Status::CodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(Status, RobustnessFactories) {
  EXPECT_EQ(Status::DataLoss("truncated").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("truncated").ToString(), "DataLoss: truncated");
}

TEST(Status, ExitCodeMapsCallerErrorsToUsage) {
  EXPECT_EQ(Status::OK().ExitCode(), 0);
  EXPECT_EQ(Status::InvalidArgument("bad flag").ExitCode(), 2);
  EXPECT_EQ(Status::DataLoss("corrupt").ExitCode(), 1);
  EXPECT_EQ(Status::IOError("missing").ExitCode(), 1);
  EXPECT_EQ(Status::Unavailable("down").ExitCode(), 1);
  EXPECT_EQ(Status::ResourceExhausted("shed").ExitCode(), 1);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  const std::string got = std::move(v).value();
  EXPECT_EQ(got, "hello");
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailsThenPropagates() {
  SONG_RETURN_IF_ERROR(Status::IOError("disk"));
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  const Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace song
