// Tests for the deterministic fault-injection registry: spec parsing,
// seed/counter determinism, probability calibration, per-site @max caps,
// wildcard matching, and the zero-cost disabled path.

#include "core/fault_injection.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace song::fault {
namespace {

TEST(FaultInjection, DisabledByDefaultAndNeverFires) {
  FaultRegistry reg;
  EXPECT_FALSE(reg.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reg.ShouldFail("io.read"));
  }
  EXPECT_EQ(reg.injected_total(), 0u);
}

TEST(FaultInjection, ParsesMultiRuleSpec) {
  FaultRegistry reg;
  ASSERT_TRUE(
      reg.Configure("shard0.kernel=1,io.read=0.5@3,*=0.01", 7).ok());
  EXPECT_TRUE(reg.enabled());
  EXPECT_EQ(reg.spec(), "shard0.kernel=1,io.read=0.5@3,*=0.01");
  EXPECT_EQ(reg.seed(), 7u);
}

TEST(FaultInjection, RejectsMalformedSpecs) {
  FaultRegistry reg;
  EXPECT_FALSE(reg.Configure("oops", 1).ok());             // no '='
  EXPECT_FALSE(reg.Configure("a=2", 1).ok());              // prob > 1
  EXPECT_FALSE(reg.Configure("a=-0.5", 1).ok());           // prob < 0
  EXPECT_FALSE(reg.Configure("a=", 1).ok());               // empty prob
  EXPECT_FALSE(reg.Configure("=1", 1).ok());               // empty site
  EXPECT_FALSE(reg.Configure("a=0.5@", 1).ok());           // empty max
  EXPECT_FALSE(reg.Configure("a=0.5@x", 1).ok());          // junk max
  EXPECT_FALSE(reg.Configure("a*b*c=1", 1).ok());          // two wildcards
  EXPECT_FALSE(reg.enabled());  // a failed Configure leaves it disarmed
}

TEST(FaultInjection, EmptySpecDisables) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("io.read=1", 1).ok());
  EXPECT_TRUE(reg.enabled());
  ASSERT_TRUE(reg.Configure("", 1).ok());
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(reg.ShouldFail("io.read"));
}

TEST(FaultInjection, ProbabilityOneAlwaysFires) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("io.read=1", 99).ok());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(reg.ShouldFail("io.read"));
  EXPECT_EQ(reg.injected_total(), 20u);
  EXPECT_FALSE(reg.ShouldFail("io.write"));  // unmatched site never fails
}

TEST(FaultInjection, DeterministicAcrossRegistries) {
  FaultRegistry a, b;
  ASSERT_TRUE(a.Configure("site.x=0.5", 1234).ok());
  ASSERT_TRUE(b.Configure("site.x=0.5", 1234).ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.ShouldFail("site.x"), b.ShouldFail("site.x")) << "draw " << i;
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(FaultInjection, DifferentSeedsGiveDifferentSequences) {
  FaultRegistry a, b;
  ASSERT_TRUE(a.Configure("site.x=0.5", 1).ok());
  ASSERT_TRUE(b.Configure("site.x=0.5", 2).ok());
  int diff = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.ShouldFail("site.x") != b.ShouldFail("site.x")) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(FaultInjection, ReconfigureResetsCounters) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("site.x=0.5", 42).ok());
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(reg.ShouldFail("site.x"));
  ASSERT_TRUE(reg.Configure("site.x=0.5", 42).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reg.ShouldFail("site.x"), first[i]) << "draw " << i;
  }
}

TEST(FaultInjection, InjectionRateTracksProbability) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("site.x=0.2", 777).ok());
  const int n = 20000;
  int fails = 0;
  for (int i = 0; i < n; ++i) {
    if (reg.ShouldFail("site.x")) ++fails;
  }
  const double rate = static_cast<double>(fails) / n;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjection, MaxFailuresCapsPerSite) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("shard*.kernel=1@2", 5).ok());
  // Each matched site fails exactly twice, independently.
  EXPECT_TRUE(reg.ShouldFail("shard0.kernel"));
  EXPECT_TRUE(reg.ShouldFail("shard0.kernel"));
  EXPECT_FALSE(reg.ShouldFail("shard0.kernel"));
  EXPECT_TRUE(reg.ShouldFail("shard1.kernel"));
  EXPECT_TRUE(reg.ShouldFail("shard1.kernel"));
  EXPECT_FALSE(reg.ShouldFail("shard1.kernel"));
  EXPECT_EQ(reg.injected_total(), 4u);
}

TEST(FaultInjection, FirstMatchingRuleWins) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("shard0.kernel=0,shard*.kernel=1", 5).ok());
  EXPECT_FALSE(reg.ShouldFail("shard0.kernel"));  // exact 0-rate rule first
  EXPECT_TRUE(reg.ShouldFail("shard1.kernel"));   // wildcard catches others
}

TEST(FaultInjection, PatternMatching) {
  EXPECT_TRUE(PatternMatches("io.read", "io.read"));
  EXPECT_FALSE(PatternMatches("io.read", "io.write"));
  EXPECT_TRUE(PatternMatches("shard*.kernel", "shard0.kernel"));
  EXPECT_TRUE(PatternMatches("shard*.kernel", "shard12.kernel"));
  EXPECT_FALSE(PatternMatches("shard*.kernel", "shard0.htod"));
  EXPECT_TRUE(PatternMatches("*", "anything.at.all"));
  EXPECT_TRUE(PatternMatches("shard0.*", "shard0.dtoh"));
  EXPECT_FALSE(PatternMatches("shard0.*", "shard1.dtoh"));
  EXPECT_TRUE(PatternMatches("*", ""));
  EXPECT_FALSE(PatternMatches("a*b", "acd"));
}

TEST(FaultInjection, InjectedCountsPerSite) {
  FaultRegistry reg;
  ASSERT_TRUE(reg.Configure("a=1@1,b=1", 3).ok());
  reg.ShouldFail("a");
  reg.ShouldFail("a");  // capped, not counted
  reg.ShouldFail("b");
  reg.ShouldFail("b");
  const auto counts = reg.InjectedCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "a");
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, "b");
  EXPECT_EQ(counts[1].second, 2u);
}

TEST(FaultInjection, ScopedSpecRestoresPreviousState) {
  FaultRegistry& global = FaultRegistry::Global();
  const bool was_enabled = global.enabled();
  const std::string prev_spec = global.spec();
  {
    ScopedFaultSpec scoped("scoped.site=1", 11);
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(global.enabled());
    EXPECT_TRUE(ShouldFail("scoped.site"));
  }
  EXPECT_EQ(global.enabled(), was_enabled);
  EXPECT_EQ(global.spec(), prev_spec);
}

TEST(FaultInjection, ScopedSpecReportsParseError) {
  ScopedFaultSpec scoped("not a spec", 1);
  EXPECT_FALSE(scoped.status().ok());
  EXPECT_FALSE(ShouldFail("anything"));
}

}  // namespace
}  // namespace song::fault
