#include "core/dataset.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"

namespace song {
namespace {

TEST(Dataset, DimensionsAndPadding) {
  Dataset ds(10, 100);
  EXPECT_EQ(ds.num(), 10u);
  EXPECT_EQ(ds.dim(), 100u);
  EXPECT_EQ(ds.stride() % 16, 0u);
  EXPECT_GE(ds.stride(), 100u);
  EXPECT_EQ(ds.PayloadBytes(), 10u * 100u * sizeof(float));
}

TEST(Dataset, RowsAreAligned) {
  Dataset ds(7, 33);
  for (idx_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ds.Row(i)) % 64, 0u);
  }
}

TEST(Dataset, SetAndGetRow) {
  Dataset ds(3, 4);
  const float row[] = {1.0f, 2.0f, 3.0f, 4.0f};
  ds.SetRow(1, row);
  EXPECT_FLOAT_EQ(ds.Row(1)[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.Row(1)[3], 4.0f);
  EXPECT_FLOAT_EQ(ds.Row(0)[0], 0.0f);  // untouched rows stay zero
}

TEST(Dataset, PaddedStrideIsNextMultipleOf16) {
  EXPECT_EQ(Dataset::PaddedStride(1), 16u);
  EXPECT_EQ(Dataset::PaddedStride(16), 16u);
  EXPECT_EQ(Dataset::PaddedStride(17), 32u);
  EXPECT_EQ(Dataset::PaddedStride(100), 112u);
  EXPECT_EQ(Dataset::PaddedStride(960), 960u);
  Dataset ds(2, 100);
  EXPECT_EQ(ds.stride(), Dataset::PaddedStride(100));
}

TEST(Dataset, SetRowKeepsPaddedTailZero) {
  Dataset ds(2, 5);  // stride 16 -> 11 pad floats per row
  ASSERT_GT(ds.stride(), ds.dim());
  // Dirty the pad region, then SetRow must restore the zero-pad invariant.
  float* raw = ds.Row(0);
  for (size_t i = ds.dim(); i < ds.stride(); ++i) raw[i] = 123.0f;
  const float row[] = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  ds.SetRow(0, row);
  for (size_t i = 0; i < ds.dim(); ++i) {
    EXPECT_FLOAT_EQ(ds.Row(0)[i], row[i]);
  }
  for (size_t i = ds.dim(); i < ds.stride(); ++i) {
    EXPECT_EQ(ds.Row(0)[i], 0.0f) << "pad float " << i;
  }
}

TEST(Dataset, FromFlatRoundTrip) {
  const std::vector<float> flat = {1, 2, 3, 4, 5, 6};
  auto ds = Dataset::FromFlat(flat, 2, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_FLOAT_EQ(ds->Row(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(ds->Row(1)[0], 4.0f);
}

TEST(Dataset, FromFlatRejectsSizeMismatch) {
  const std::vector<float> flat = {1, 2, 3};
  auto ds = Dataset::FromFlat(flat, 2, 3);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(Dataset, NormalizeRowsMakesUnitLength) {
  Dataset ds(2, 3);
  const float a[] = {3.0f, 0.0f, 4.0f};
  const float zero[] = {0.0f, 0.0f, 0.0f};
  ds.SetRow(0, a);
  ds.SetRow(1, zero);
  ds.NormalizeRows();
  double norm = 0.0;
  for (size_t d = 0; d < 3; ++d) norm += ds.Row(0)[d] * ds.Row(0)[d];
  EXPECT_NEAR(norm, 1.0, 1e-6);
  EXPECT_FLOAT_EQ(ds.Row(1)[0], 0.0f);  // zero row untouched
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_ds_test.bin").string();
  Dataset ds(5, 17);
  for (idx_t i = 0; i < 5; ++i) {
    std::vector<float> row(17);
    for (size_t d = 0; d < 17; ++d) {
      row[d] = static_cast<float>(i * 100 + d);
    }
    ds.SetRow(i, row.data());
  }
  ASSERT_TRUE(ds.Save(path).ok());
  auto loaded = Dataset::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num(), 5u);
  EXPECT_EQ(loaded->dim(), 17u);
  for (idx_t i = 0; i < 5; ++i) {
    for (size_t d = 0; d < 17; ++d) {
      EXPECT_FLOAT_EQ(loaded->Row(i)[d], ds.Row(i)[d]);
    }
  }
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileFails) {
  auto loaded = Dataset::Load("/nonexistent/song.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(Dataset, LoadRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_bad_magic.bin")
          .string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("JUNKJUNKJUNKJUNK", 1, 16, f);
  std::fclose(f);
  auto loaded = Dataset::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(Dataset, EmptyDataset) {
  Dataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.num(), 0u);
}

}  // namespace
}  // namespace song
