#include "core/random.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace song {
namespace {

TEST(RandomEngine, DeterministicForSameSeed) {
  RandomEngine a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomEngine, DifferentSeedsDiverge) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RandomEngine, UniformInRange) {
  RandomEngine rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextUniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomEngine, UniformBounds) {
  RandomEngine rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RandomEngine, UniformMeanIsCentered) {
  RandomEngine rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextUniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomEngine, NextUintInRange) {
  RandomEngine rng(10);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.NextUint(7)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(RandomEngine, GaussianMomentsMatch) {
  RandomEngine rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RandomEngine, CauchyMedianIsZero) {
  RandomEngine rng(12);
  const int n = 100000;
  int below = 0;
  for (int i = 0; i < n; ++i) below += (rng.NextCauchy() < 0.0);
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(RandomEngine, CauchyQuartilesAtPlusMinusOne) {
  // For standard Cauchy, P(X < -1) = 0.25 and P(X < 1) = 0.75.
  RandomEngine rng(13);
  const int n = 100000;
  int below_m1 = 0, below_p1 = 0;
  for (int i = 0; i < n; ++i) {
    const double c = rng.NextCauchy();
    below_m1 += (c < -1.0);
    below_p1 += (c < 1.0);
  }
  EXPECT_NEAR(static_cast<double>(below_m1) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(below_p1) / n, 0.75, 0.02);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  uint64_t s = 0;
  const uint64_t a = SplitMix64(s);
  const uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s2), a);
}

TEST(RandomEngine, ReseedResetsSequence) {
  RandomEngine rng(55);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(55);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace song
