// Copyright 2026 The SONG-Repro Authors.
//
// Semantics of the annotated sync wrappers (core/sync.h): mutual exclusion,
// TryLock, shared/exclusive modes, CondVar wakeups — exercised with real
// thread contention so the thread-sanitizer CI leg (gtest_filter includes
// Sync*) proves the wrappers add no races of their own. Also pins the
// no-op fallback contract: on compilers without Clang's capability
// attributes the SONG_* annotation macros must expand to nothing, so
// annotated headers stay warning-free on GCC.

#include "core/sync.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace song {
namespace {

TEST(SyncMutex, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the lock is the protection
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(SyncMutex, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  // try_lock while another thread holds the mutex is the defined case;
  // probing from the owning thread would be UB, so probe from a helper.
  bool acquired = true;
  std::thread prober([&] {
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    } else {
      acquired = false;
    }
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread prober2([&] {
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    } else {
      acquired = false;
    }
  });
  prober2.join();
  EXPECT_TRUE(acquired);  // free -> acquired
}

TEST(SyncSharedMutex, ReadersShareWritersExclude) {
  SharedMutex mu;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> inside{0};
  std::atomic<bool> overlap_timeout{false};
  std::atomic<bool> writer_saw_readers{false};
  int guarded = 0;
  constexpr int kReaders = 4;

  // Rendezvous INSIDE the shared section: every reader holds the lock and
  // spins until all kReaders are in simultaneously. If shared mode wrongly
  // serialized readers this could never happen, and the bounded spin trips.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(mu);
      concurrent_readers.fetch_add(1);
      inside.fetch_add(1);
      for (long spin = 0; inside.load() < kReaders; ++spin) {
        if (spin > 200'000'000L) {  // ~seconds: readers never overlapped
          overlap_timeout.store(true);
          break;
        }
        std::this_thread::yield();
      }
      EXPECT_EQ(guarded, 0);  // writer cannot run while any reader holds mu
      concurrent_readers.fetch_sub(1);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(overlap_timeout.load()) << "shared mode serialized readers";

  std::thread writer([&] {
    WriterLock lock(mu);
    writer_saw_readers.store(concurrent_readers.load() != 0);
    guarded = 1;
  });
  writer.join();
  EXPECT_FALSE(writer_saw_readers.load());
  EXPECT_EQ(guarded, 1);

  // TryLock honesty while shared-held: exclusive unavailable, shared still
  // grantable. Probed from helper threads — calling try_lock from a thread
  // that already owns the mutex in any mode would be UB.
  mu.LockShared();
  bool exclusive_ok = true;
  bool shared_ok = false;
  std::thread prober([&] {
    if (mu.TryLock()) {
      exclusive_ok = true;
      mu.Unlock();
    } else {
      exclusive_ok = false;
    }
    if (mu.TryLockShared()) {
      shared_ok = true;
      mu.UnlockShared();
    } else {
      shared_ok = false;
    }
  });
  prober.join();
  EXPECT_FALSE(exclusive_ok);
  EXPECT_TRUE(shared_ok);
  mu.UnlockShared();
}

TEST(SyncCondVar, ProducerConsumerHandoff) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;
  bool done = false;
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    int consumed = 0;
    while (true) {
      MutexLock lock(mu);
      cv.Wait(mu, [&]() SONG_REQUIRES(mu) { return !queue.empty() || done; });
      consumed += static_cast<int>(queue.size());
      queue.clear();
      if (done) break;
    }
    MutexLock lock(mu);
    queue.push_back(consumed);  // report back under the lock
  });

  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(mu);
    queue.push_back(i);
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
    cv.NotifyAll();
  }
  consumer.join();

  MutexLock lock(mu);
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0], kItems);
}

TEST(SyncCondVar, PredicateWaitSeesNotifyAll) {
  Mutex mu;
  CondVar cv;
  int phase = 0;
  constexpr int kWaiters = 4;
  std::atomic<int> released{0};

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      cv.Wait(mu, [&]() SONG_REQUIRES(mu) { return phase == 1; });
      released.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    phase = 1;
    cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(released.load(), kWaiters);
}

// On toolchains without Clang's capability attributes the annotation macros
// must vanish entirely — an annotated declaration is the same token stream
// as an unannotated one. Double-stringification: if SONG_GUARDED_BY(mu)
// expanded to anything, the stringified literal would be longer than "".
#define SONG_TEST_STR_(x) #x
#define SONG_TEST_STR(x) SONG_TEST_STR_(x)

TEST(SyncAnnotations, MacrosCompileAwayWithoutCapabilityAttributes) {
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
  constexpr bool kHaveAttributes = true;
#else
  constexpr bool kHaveAttributes = false;
#endif
#else
  constexpr bool kHaveAttributes = false;
#endif
  const char* expansion = SONG_TEST_STR(SONG_GUARDED_BY(mu));
  if (kHaveAttributes) {
    EXPECT_NE(std::strlen(expansion), 0u);
  } else {
    EXPECT_EQ(std::strlen(expansion), 0u);
    EXPECT_EQ(std::strlen(SONG_TEST_STR(SONG_EXCLUDES(mu))), 0u);
    EXPECT_EQ(std::strlen(SONG_TEST_STR(SONG_REQUIRES(mu))), 0u);
  }
}

}  // namespace
}  // namespace song
