// Exactness tests for the tiered SIMD distance kernels: every metric at
// every compiled tier against a double-precision oracle (including dims
// that are not multiples of the vector width, exercising the scalar
// tails), plus the bit-identity contracts of distance_kernels.h (batch ==
// single within a tier, gather == range).

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/distance_kernels.h"
#include "core/simd.h"

namespace song {
namespace {

constexpr size_t kDims[] = {1,  2,  3,   7,   8,   15,  16,  17,  31, 32,
                            33, 48, 100, 127, 128, 129, 200, 784, 960};

std::vector<float> RandomVec(size_t dim, uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> d;
  std::vector<float> v(dim);
  for (float& x : v) x = d(rng);
  return v;
}

double OracleL2(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = double{a[i]} - double{b[i]};
    s += d * d;
  }
  return s;
}

double OracleDot(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += double{a[i]} * double{b[i]};
  return s;
}

double OracleCosine(const float* a, const float* b, size_t dim) {
  const double dot = OracleDot(a, b, dim);
  const double na = OracleDot(a, a, dim);
  const double nb = OracleDot(b, b, dim);
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / std::sqrt(na * nb);
}

/// Float summation error grows with dim; scale the tolerance with the
/// magnitude of the accumulated terms.
double Tolerance(size_t dim, double magnitude) {
  return 1e-5 * static_cast<double>(dim) * std::max(1.0, magnitude);
}

std::vector<SimdTier> CompiledTiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (SimdTierCompiled(t) && t <= CpuSimdTier()) tiers.push_back(t);
  }
  return tiers;
}

TEST(SimdDistanceTest, TierResolutionIsSane) {
  // Scalar is always compiled and the active tier never exceeds the CPU.
  EXPECT_TRUE(SimdTierCompiled(SimdTier::kScalar));
  EXPECT_LE(ActiveSimdTier(), CpuSimdTier());
  EXPECT_TRUE(SimdTierCompiled(ActiveSimdTier()));
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx512), "avx512");
}

TEST(SimdDistanceTest, PairKernelsMatchDoubleOracleEveryTierEveryDim) {
  for (const SimdTier tier : CompiledTiers()) {
    const internal::DistanceKernelTable& table =
        internal::KernelTableForTier(tier);
    for (const size_t dim : kDims) {
      const auto a = RandomVec(dim, static_cast<uint32_t>(dim) * 2 + 1);
      const auto b = RandomVec(dim, static_cast<uint32_t>(dim) * 2 + 2);
      const double l2 = OracleL2(a.data(), b.data(), dim);
      const double dot = OracleDot(a.data(), b.data(), dim);
      const double cos = OracleCosine(a.data(), b.data(), dim);
      SCOPED_TRACE(testing::Message()
                   << "tier=" << SimdTierName(tier) << " dim=" << dim);
      EXPECT_NEAR(table.l2(a.data(), b.data(), dim), l2,
                  Tolerance(dim, std::abs(l2)));
      EXPECT_NEAR(table.dot(a.data(), b.data(), dim), dot,
                  Tolerance(dim, std::abs(dot)));
      EXPECT_NEAR(table.ip(a.data(), b.data(), dim), -dot,
                  Tolerance(dim, std::abs(dot)));
      EXPECT_NEAR(table.cosine(a.data(), b.data(), dim), cos,
                  Tolerance(dim, 1.0));
    }
  }
}

TEST(SimdDistanceTest, BatchIsBitIdenticalToSingleWithinEachTier) {
  constexpr size_t kRows = 37;  // not a multiple of the 4-row unroll
  for (const SimdTier tier : CompiledTiers()) {
    const internal::DistanceKernelTable& table =
        internal::KernelTableForTier(tier);
    for (const size_t dim : kDims) {
      Dataset data(kRows, dim);
      std::mt19937 rng(static_cast<uint32_t>(dim) * 31 + 7);
      std::normal_distribution<float> nd;
      std::vector<float> row(dim);
      for (size_t i = 0; i < kRows; ++i) {
        for (float& x : row) x = nd(rng);
        data.SetRow(static_cast<idx_t>(i), row.data());
      }
      const auto query = RandomVec(dim, 4242);
      std::vector<idx_t> ids;
      for (size_t i = 0; i < kRows; ++i) {
        ids.push_back(static_cast<idx_t>((i * 13) % kRows));
      }
      std::vector<float> batch(kRows);
      SCOPED_TRACE(testing::Message()
                   << "tier=" << SimdTierName(tier) << " dim=" << dim);
      table.l2_gather(query.data(), data.Row(0), data.stride(), dim,
                      ids.data(), ids.size(), batch.data());
      for (size_t i = 0; i < kRows; ++i) {
        const float single = table.l2(query.data(), data.Row(ids[i]), dim);
        EXPECT_EQ(batch[i], single) << "l2 row " << i;  // bit-identical
      }
      table.dot_gather(query.data(), data.Row(0), data.stride(), dim,
                       ids.data(), ids.size(), batch.data());
      for (size_t i = 0; i < kRows; ++i) {
        const float single = table.dot(query.data(), data.Row(ids[i]), dim);
        EXPECT_EQ(batch[i], single) << "dot row " << i;
      }
    }
  }
}

TEST(SimdDistanceTest, GatherAndRangeAgreeOnIdentityIds) {
  constexpr size_t kRows = 21;
  constexpr size_t kDim = 129;
  for (const SimdTier tier : CompiledTiers()) {
    const internal::DistanceKernelTable& table =
        internal::KernelTableForTier(tier);
    Dataset data(kRows, kDim);
    std::mt19937 rng(5);
    std::normal_distribution<float> nd;
    std::vector<float> row(kDim);
    for (size_t i = 0; i < kRows; ++i) {
      for (float& x : row) x = nd(rng);
      data.SetRow(static_cast<idx_t>(i), row.data());
    }
    const auto query = RandomVec(kDim, 6);
    std::vector<idx_t> ids(kRows);
    for (size_t i = 0; i < kRows; ++i) ids[i] = static_cast<idx_t>(i);
    std::vector<float> gather(kRows), range(kRows);
    table.l2_gather(query.data(), data.Row(0), data.stride(), kDim, ids.data(),
                    kRows, gather.data());
    table.l2_range(query.data(), data.Row(0), data.stride(), kDim, 0, kRows,
                   range.data());
    for (size_t i = 0; i < kRows; ++i) {
      EXPECT_EQ(gather[i], range[i]) << SimdTierName(tier) << " row " << i;
    }
  }
}

TEST(SimdDistanceTest, BatchDistanceMatchesPairwiseKernels) {
  constexpr size_t kRows = 50;
  for (const Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    for (const size_t dim : {7u, 100u, 129u}) {
      Dataset data(kRows, dim);
      std::mt19937 rng(static_cast<uint32_t>(dim));
      std::normal_distribution<float> nd;
      std::vector<float> row(dim);
      for (size_t i = 0; i < kRows; ++i) {
        for (float& x : row) x = nd(rng);
        data.SetRow(static_cast<idx_t>(i), row.data());
      }
      const auto query = RandomVec(dim, 77);
      const BatchDistance bd(metric, &data);
      const float qn = bd.QueryNormSqr(query.data());
      const DistanceFunc pairwise = GetDistanceFunc(metric);

      std::vector<idx_t> ids(kRows);
      for (size_t i = 0; i < kRows; ++i) ids[i] = static_cast<idx_t>(i);
      std::vector<float> batch(kRows), range(kRows);
      bd.ComputeBatch(query.data(), qn, ids.data(), kRows, batch.data());
      bd.ComputeRange(query.data(), qn, 0, kRows, range.data());
      for (size_t i = 0; i < kRows; ++i) {
        SCOPED_TRACE(testing::Message() << "metric=" << MetricName(metric)
                                        << " dim=" << dim << " row=" << i);
        const float expect =
            pairwise(query.data(), data.Row(static_cast<idx_t>(i)), dim);
        // Cosine combines cached norms in a different association than the
        // pairwise kernel's in-line norms; allow a few float ulps there.
        if (metric == Metric::kCosine) {
          EXPECT_NEAR(batch[i], expect, 1e-6);
          EXPECT_NEAR(range[i], expect, 1e-6);
        } else {
          EXPECT_EQ(batch[i], expect);
          EXPECT_EQ(range[i], expect);
        }
        EXPECT_EQ(bd.Compute(query.data(), qn, static_cast<idx_t>(i)),
                  batch[i]);
      }
    }
  }
}

TEST(SimdDistanceTest, CosineBatchHandlesZeroRowsAndZeroQuery) {
  constexpr size_t kDim = 33;
  Dataset data(3, kDim);
  std::vector<float> row(kDim, 0.0f);
  data.SetRow(0, row.data());  // zero row
  row.assign(kDim, 1.0f);
  data.SetRow(1, row.data());
  row.assign(kDim, -2.0f);
  data.SetRow(2, row.data());
  const BatchDistance bd(Metric::kCosine, &data);

  const std::vector<float> query(kDim, 1.0f);
  const std::vector<idx_t> ids = {0, 1, 2};
  std::vector<float> out(3);
  bd.ComputeBatch(query.data(), bd.QueryNormSqr(query.data()), ids.data(), 3,
                  out.data());
  EXPECT_FLOAT_EQ(out[0], 1.0f);   // zero row -> neutral distance
  EXPECT_NEAR(out[1], 0.0f, 1e-6);  // parallel
  EXPECT_NEAR(out[2], 2.0f, 1e-6);  // anti-parallel

  const std::vector<float> zero_query(kDim, 0.0f);
  bd.ComputeBatch(zero_query.data(), bd.QueryNormSqr(zero_query.data()),
                  ids.data(), 3, out.data());
  for (const float v : out) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(SimdDistanceTest, NamedEntryPointsUseActiveTier) {
  const internal::DistanceKernelTable& active =
      internal::KernelTableForTier(ActiveSimdTier());
  const size_t dim = 100;
  const auto a = RandomVec(dim, 8);
  const auto b = RandomVec(dim, 9);
  EXPECT_EQ(L2Sqr(a.data(), b.data(), dim), active.l2(a.data(), b.data(), dim));
  EXPECT_EQ(InnerProduct(a.data(), b.data(), dim),
            active.ip(a.data(), b.data(), dim));
  EXPECT_EQ(CosineDistance(a.data(), b.data(), dim),
            active.cosine(a.data(), b.data(), dim));
  EXPECT_EQ(GetDistanceFuncForTier(Metric::kL2, ActiveSimdTier()), active.l2);
}

}  // namespace
}  // namespace song
