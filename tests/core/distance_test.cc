#include "core/distance.h"

#include <cmath>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace song {
namespace {

std::vector<float> RandomVec(std::mt19937& rng, size_t dim) {
  std::normal_distribution<float> d(0.0f, 1.0f);
  std::vector<float> v(dim);
  for (float& x : v) x = d(rng);
  return v;
}

// Naive references.
float RefL2(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += (double{a[i]} - b[i]) * (double{a[i]} - b[i]);
  }
  return static_cast<float>(s);
}

float RefDot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += double{a[i]} * b[i];
  return static_cast<float>(s);
}

TEST(Distance, L2OfIdenticalVectorsIsZero) {
  std::vector<float> v = {1.0f, -2.0f, 3.0f};
  EXPECT_FLOAT_EQ(L2Sqr(v.data(), v.data(), v.size()), 0.0f);
}

TEST(Distance, L2KnownValue) {
  std::vector<float> a = {0.0f, 0.0f};
  std::vector<float> b = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), b.data(), 2), 25.0f);
}

TEST(Distance, L2IsSymmetric) {
  std::mt19937 rng(1);
  const auto a = RandomVec(rng, 57);
  const auto b = RandomVec(rng, 57);
  EXPECT_FLOAT_EQ(L2Sqr(a.data(), b.data(), 57),
                  L2Sqr(b.data(), a.data(), 57));
}

TEST(Distance, InnerProductIsNegatedDot) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(InnerProduct(a.data(), b.data(), 3), -32.0f);
}

TEST(Distance, CosineOfParallelVectorsIsZero) {
  std::vector<float> a = {1.0f, 2.0f, 2.0f};
  std::vector<float> b = {2.0f, 4.0f, 4.0f};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 3), 0.0f, 1e-6f);
}

TEST(Distance, CosineOfOrthogonalVectorsIsOne) {
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {0.0f, 5.0f};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 2), 1.0f, 1e-6f);
}

TEST(Distance, CosineOfOppositeVectorsIsTwo) {
  std::vector<float> a = {1.0f, 1.0f};
  std::vector<float> b = {-2.0f, -2.0f};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 2), 2.0f, 1e-6f);
}

TEST(Distance, CosineOfZeroVectorIsDefinedAsOne) {
  std::vector<float> a = {0.0f, 0.0f};
  std::vector<float> b = {1.0f, 2.0f};
  EXPECT_FLOAT_EQ(CosineDistance(a.data(), b.data(), 2), 1.0f);
}

TEST(Distance, MetricNames) {
  EXPECT_STREQ(MetricName(Metric::kL2), "l2");
  EXPECT_STREQ(MetricName(Metric::kInnerProduct), "ip");
  EXPECT_STREQ(MetricName(Metric::kCosine), "cosine");
}

TEST(Distance, GetDistanceFuncDispatch) {
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {0.0f, 1.0f};
  EXPECT_FLOAT_EQ(GetDistanceFunc(Metric::kL2)(a.data(), b.data(), 2), 2.0f);
  EXPECT_FLOAT_EQ(GetDistanceFunc(Metric::kInnerProduct)(a.data(), b.data(),
                                                         2),
                  0.0f);
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kCosine, a.data(), b.data(), 2),
                  1.0f);
}

// Unrolled kernels must match the naive reference across dimensions,
// including every remainder class mod 4.
class DistanceSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DistanceSweepTest, UnrolledMatchesReference) {
  const size_t dim = GetParam();
  std::mt19937 rng(static_cast<uint32_t>(dim));
  for (int rep = 0; rep < 10; ++rep) {
    const auto a = RandomVec(rng, dim);
    const auto b = RandomVec(rng, dim);
    const float ref_l2 = RefL2(a, b);
    const float got_l2 = L2Sqr(a.data(), b.data(), dim);
    EXPECT_NEAR(got_l2, ref_l2, 1e-3f * (1.0f + std::fabs(ref_l2)));
    const float ref_ip = -RefDot(a, b);
    const float got_ip = InnerProduct(a.data(), b.data(), dim);
    EXPECT_NEAR(got_ip, ref_ip, 1e-3f * (1.0f + std::fabs(ref_ip)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 31,
                                           33, 64, 100, 128, 200, 256, 784,
                                           960));

}  // namespace
}  // namespace song
