// Tests for the small core utilities: aligned buffers, bit vectors /
// Hamming distance, recall evaluation and the thread pool.

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "core/aligned_buffer.h"
#include "core/bitvector.h"
#include "core/recall.h"
#include "core/thread_pool.h"
#include "core/types.h"
#include "gtest/gtest.h"

namespace song {
namespace {

// ---- AlignedBuffer ----

TEST(AlignedBuffer, AllocatesAlignedZeroed) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kDefaultAlignment, 0u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, CopySemantics) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  AlignedBuffer<int> b = a;
  EXPECT_EQ(b[3], 42);
  b[3] = 7;
  EXPECT_EQ(a[3], 42);  // deep copy
}

TEST(AlignedBuffer, MoveSemantics) {
  AlignedBuffer<int> a(10);
  a[0] = 5;
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[0], 5);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, ResetReallocates) {
  AlignedBuffer<int> a(4);
  a[0] = 9;
  a.Reset(8);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a[0], 0);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), nullptr);
}

// ---- BinaryCodes / Hamming ----

TEST(BinaryCodes, SetAndGetBits) {
  BinaryCodes codes(3, 100);
  EXPECT_EQ(codes.words(), 2u);  // 100 bits -> 2 u64 words
  codes.SetBit(1, 0);
  codes.SetBit(1, 63);
  codes.SetBit(1, 64);
  codes.SetBit(1, 99);
  EXPECT_TRUE(codes.GetBit(1, 0));
  EXPECT_TRUE(codes.GetBit(1, 99));
  EXPECT_FALSE(codes.GetBit(1, 1));
  EXPECT_FALSE(codes.GetBit(0, 0));
}

TEST(BinaryCodes, HammingCountsDifferingBits) {
  BinaryCodes codes(2, 128);
  codes.SetBit(0, 3);
  codes.SetBit(0, 77);
  codes.SetBit(1, 3);
  codes.SetBit(1, 100);
  // Differ at 77 and 100.
  EXPECT_EQ(codes.Hamming(0, 1), 2u);
  EXPECT_EQ(codes.Hamming(0, 0), 0u);
}

TEST(BinaryCodes, PayloadBytesMatchesPaperAccounting) {
  BinaryCodes codes(1000, 128);
  EXPECT_EQ(codes.PayloadBytes(), 1000u * 16u);
}

TEST(HammingDistance, AllBitsDiffer) {
  const uint64_t a[2] = {~0ULL, ~0ULL};
  const uint64_t b[2] = {0, 0};
  EXPECT_EQ(HammingDistance(a, b, 2), 128u);
}

// ---- Recall ----

TEST(Recall, PerfectMatch) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3}, {1, 2, 3}, 3), 1.0);
}

TEST(Recall, OrderDoesNotMatter) {
  EXPECT_DOUBLE_EQ(RecallAtK({3, 1, 2}, {1, 2, 3}, 3), 1.0);
}

TEST(Recall, PartialMatch) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 8}, {1, 2, 3}, 3), 1.0 / 3.0);
}

TEST(Recall, TruncatesResultToK) {
  // Hits beyond position k do not count: {9,8,1,2,3}@3 keeps only {9,8,1}.
  EXPECT_DOUBLE_EQ(RecallAtK({9, 8, 1, 2, 3}, {1, 2, 3}, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK({9, 8, 7, 2, 3}, {1, 2, 3}, 3), 0.0);
}

TEST(Recall, DuplicateResultsCountOnce) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 1, 1}, {1, 2, 3}, 3), 1.0 / 3.0);
}

TEST(Recall, EmptyResultIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1, 2, 3}, 3), 0.0);
}

TEST(Recall, ShortGroundTruthNormalizesByItsSize) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 5}, {1}, 10), 1.0);
}

TEST(Recall, MeanAcrossQueries) {
  const std::vector<std::vector<idx_t>> results = {{1, 2}, {9, 9}};
  const std::vector<std::vector<idx_t>> truth = {{1, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(MeanRecallAtK(results, truth, 2), 0.5);
}

TEST(Recall, MismatchedSizesReturnZero) {
  EXPECT_DOUBLE_EQ(MeanRecallAtK({{1}}, {}, 1), 0.0);
}

// ---- ThreadPool / ParallelFor ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 8, [&](size_t i, size_t) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i, size_t tid) {
    EXPECT_EQ(tid, 0u);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ThreadIdsWithinRange) {
  std::atomic<bool> ok{true};
  ParallelFor(1000, 3, [&](size_t, size_t tid) {
    if (tid >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(ParallelFor, ExplicitChunkCoversEveryIndexExactlyOnce) {
  const size_t n = 1003;  // not a multiple of the chunk
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t i, size_t) { hits[i].fetch_add(1); },
              /*chunk=*/8);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ExplicitChunkRunsConsecutiveIndicesOnOneThread) {
  // With chunk=8 each grab is a run of 8 consecutive indices, so indices
  // 0..7 must all land on the same thread.
  const size_t n = 64;
  std::vector<int> owner(n, -1);
  std::mutex mu;
  ParallelFor(n, 4, [&](size_t i, size_t tid) {
    std::lock_guard<std::mutex> lock(mu);
    owner[i] = static_cast<int>(tid);
  }, /*chunk=*/8);
  for (size_t i = 1; i < 8; ++i) EXPECT_EQ(owner[i], owner[0]);
}

}  // namespace
}  // namespace song
