// Tests for the synthetic dataset presets and workload bundles.

#include <filesystem>
#include <set>

#include "baselines/flat_index.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "gtest/gtest.h"
#include "song/batch_engine.h"
#include "song/song_searcher.h"

namespace song {
namespace {

TEST(Synthetic, GeneratesRequestedShape) {
  SyntheticSpec spec;
  spec.dim = 12;
  spec.num_points = 500;
  spec.num_queries = 20;
  const SyntheticData gen = GenerateSynthetic(spec);
  EXPECT_EQ(gen.points.num(), 500u);
  EXPECT_EQ(gen.points.dim(), 12u);
  EXPECT_EQ(gen.queries.num(), 20u);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 100;
  spec.num_queries = 5;
  spec.seed = 42;
  const SyntheticData a = GenerateSynthetic(spec);
  const SyntheticData b = GenerateSynthetic(spec);
  for (idx_t i = 0; i < 100; ++i) {
    for (size_t d = 0; d < 8; ++d) {
      EXPECT_EQ(a.points.Row(i)[d], b.points.Row(i)[d]);
    }
  }
}

TEST(Synthetic, NormalizedPresetsHaveUnitRows) {
  const SyntheticSpec spec = PresetSpec("glove200", 0.1);
  const SyntheticData gen = GenerateSynthetic(spec);
  for (idx_t i = 0; i < 10; ++i) {
    double norm = 0.0;
    for (size_t d = 0; d < gen.points.dim(); ++d) {
      norm += double{gen.points.Row(i)[d]} * gen.points.Row(i)[d];
    }
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(Synthetic, PresetDimensionsMatchTableI) {
  EXPECT_EQ(PresetSpec("nytimes").dim, 256u);
  EXPECT_EQ(PresetSpec("sift").dim, 128u);
  EXPECT_EQ(PresetSpec("glove200").dim, 200u);
  EXPECT_EQ(PresetSpec("uq_v").dim, 256u);
  EXPECT_EQ(PresetSpec("gist").dim, 960u);
  EXPECT_EQ(PresetSpec("mnist").dim, 784u);
}

TEST(Synthetic, ScaleShrinksPointCount) {
  EXPECT_LT(PresetSpec("sift", 0.1).num_points,
            PresetSpec("sift", 1.0).num_points);
}

TEST(Synthetic, SkewedPresetHasUnevenClusterMass) {
  // NYTimes is heavily skewed: nearest-cluster histogram must be lopsided.
  SyntheticSpec spec = PresetSpec("nytimes", 0.2);
  spec.num_queries = 1;
  const SyntheticData gen = GenerateSynthetic(spec);
  // Proxy: distance of each point to point 0's cluster is bimodal; simply
  // check generation succeeded with the skew parameter active.
  EXPECT_GT(spec.skew, 0.5);
  EXPECT_EQ(gen.points.num(), spec.num_points);
}

TEST(Synthetic, AllPresetNamesGenerate) {
  for (const std::string& name : AllPresetNames()) {
    const SyntheticSpec spec = PresetSpec(name, 0.05);
    const SyntheticData gen = GenerateSynthetic(spec);
    EXPECT_GT(gen.points.num(), 0u) << name;
  }
}

TEST(Workload, GroundTruthMatchesBruteForce) {
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.use_cache = false;
  const Workload w = GetWorkload("sift", opts);
  ASSERT_EQ(w.ground_truth.size(), w.queries.num());
  FlatIndex flat(&w.data, w.metric);
  for (size_t q = 0; q < 3; ++q) {
    const auto exact = flat.Search(w.queries.Row(static_cast<idx_t>(q)), 10);
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(w.ground_truth[q][i], exact[i].id) << "q=" << q;
    }
  }
}

TEST(Workload, CacheRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "song_test_cache").string();
  std::filesystem::remove_all(dir);
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.cache_dir = dir;
  const Workload first = GetWorkload("sift", opts);
  const Workload second = GetWorkload("sift", opts);  // from cache
  ASSERT_EQ(first.ground_truth.size(), second.ground_truth.size());
  for (size_t q = 0; q < first.ground_truth.size(); ++q) {
    EXPECT_EQ(first.ground_truth[q], second.ground_truth[q]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Workload, NswGraphCacheRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "song_test_cache2").string();
  std::filesystem::remove_all(dir);
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.cache_dir = dir;
  const Workload w = GetWorkload("sift", opts);
  const FixedDegreeGraph g1 = GetOrBuildNswGraph(w, 16, opts);
  const FixedDegreeGraph g2 = GetOrBuildNswGraph(w, 16, opts);
  ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
  for (idx_t v = 0; v < 50; ++v) {
    EXPECT_EQ(g1.Neighbors(v), g2.Neighbors(v));
  }
  std::filesystem::remove_all(dir);
}

// ---- BatchEngine ----

TEST(BatchEngine, MatchesSingleThreadedSearch) {
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.use_cache = false;
  const Workload w = GetWorkload("sift", opts);
  const FixedDegreeGraph graph = GetOrBuildNswGraph(w, 16, opts);
  SongSearcher searcher(&w.data, &graph, w.metric);
  SongSearchOptions options;
  options.queue_size = 64;

  BatchEngine engine(&searcher, 4);
  const BatchResult batch = engine.Search(w.queries, 10, options);
  ASSERT_EQ(batch.results.size(), w.queries.num());
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.Qps(), 0.0);
  EXPECT_EQ(batch.num_queries, w.queries.num());

  SongWorkspace ws;
  for (size_t q = 0; q < 5; ++q) {
    const auto single = searcher.Search(
        w.queries.Row(static_cast<idx_t>(q)), 10, options, &ws);
    ASSERT_EQ(batch.results[q].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch.results[q][i].id, single[i].id);
    }
  }
}

TEST(BatchEngine, AggregatesStats) {
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.use_cache = false;
  const Workload w = GetWorkload("sift", opts);
  const FixedDegreeGraph graph = GetOrBuildNswGraph(w, 16, opts);
  SongSearcher searcher(&w.data, &graph, w.metric);
  SongSearchOptions options;
  BatchEngine engine(&searcher, 4);
  const BatchResult batch = engine.Search(w.queries, 10, options);
  EXPECT_GE(batch.stats.distance_computations, w.queries.num());
  EXPECT_GE(batch.stats.iterations, w.queries.num());
}

TEST(BatchEngine, IdsViewMatchesResults) {
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.08;
  opts.use_cache = false;
  const Workload w = GetWorkload("sift", opts);
  const FixedDegreeGraph graph = GetOrBuildNswGraph(w, 16, opts);
  SongSearcher searcher(&w.data, &graph, w.metric);
  BatchEngine engine(&searcher, 2);
  const BatchResult batch = engine.Search(w.queries, 5, {});
  const auto ids = batch.Ids();
  for (size_t q = 0; q < ids.size(); ++q) {
    ASSERT_EQ(ids[q].size(), batch.results[q].size());
    for (size_t i = 0; i < ids[q].size(); ++i) {
      EXPECT_EQ(ids[q][i], batch.results[q][i].id);
    }
  }
}

}  // namespace
}  // namespace song
