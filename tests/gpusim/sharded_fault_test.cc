// Fault-tolerance tests for the sharded deployment: transient shard faults
// must be absorbed by retries with no result change, a permanently dead
// shard must degrade to a partial merge over the survivors (with coverage
// accounting and recall against the surviving data), and a fully dead
// fleet must surface kUnavailable instead of fabricating results.

#include <algorithm>
#include <set>
#include <vector>

#include "core/fault_injection.h"
#include "data/synthetic.h"
#include "gpusim/sharded.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace song {
namespace {

struct ShardFaultFixture {
  Dataset data;
  Dataset queries;

  static const ShardFaultFixture& Get() {
    static ShardFaultFixture* f = [] {
      auto* fx = new ShardFaultFixture();
      SyntheticSpec spec;
      spec.name = "shard_faults";
      spec.dim = 24;
      spec.num_points = 3000;
      spec.num_queries = 16;
      spec.num_clusters = 9;
      spec.seed = 909;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      return fx;
    }();
    return *f;
  }
};

ShardedSongIndex MakeIndex(const ShardFaultFixture& fx, size_t num_shards) {
  ShardedBuildOptions options;
  options.num_shards = num_shards;
  options.nsw.degree = 10;
  options.num_threads = 1;
  return ShardedSongIndex(&fx.data, Metric::kL2, options);
}

SongSearchOptions SearchOptions() {
  SongSearchOptions search = SongSearchOptions::HashTableSelDel();
  search.queue_size = 64;
  return search;
}

bool SameMergedResults(const ShardedSearchResult& a,
                       const ShardedSearchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t q = 0; q < a.results.size(); ++q) {
    if (a.results[q].size() != b.results[q].size()) return false;
    for (size_t i = 0; i < a.results[q].size(); ++i) {
      if (a.results[q][i].id != b.results[q][i].id ||
          a.results[q][i].dist != b.results[q][i].dist) {
        return false;
      }
    }
  }
  return true;
}

TEST(ShardedFaults, NoFaultTrySearchMatchesSearch) {
  // Neutralize any ambient spec (e.g. the CI fault-injection leg) so the
  // equality below is exact: both paths run fault-free.
  fault::ScopedFaultSpec clean("", 0);
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  const SongSearchOptions search = SearchOptions();
  const ShardedSearchResult plain = index.Search(fx.queries, 10, search, 1);
  const auto checked =
      index.TrySearch(fx.queries, 10, search, ShardedResilienceOptions{}, 1);
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_TRUE(SameMergedResults(plain, *checked));
  EXPECT_FALSE(checked->degraded);
  EXPECT_EQ(checked->shards_answered, checked->shards_total);
  EXPECT_DOUBLE_EQ(checked->Coverage(), 1.0);
  for (const uint32_t r : checked->shard_retries) EXPECT_EQ(r, 0u);
}

TEST(ShardedFaults, TransientFaultIsRetriedWithoutResultChange) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  const SongSearchOptions search = SearchOptions();

  ShardedSearchResult baseline;
  {
    fault::ScopedFaultSpec clean("", 0);
    baseline = index.Search(fx.queries, 10, search, 1);
  }

  // shard0's kernel fails exactly once; the retry succeeds deterministically.
  fault::ScopedFaultSpec scoped("shard0.kernel=1@1", 99);
  ASSERT_TRUE(scoped.status().ok());
  obs::MetricsRegistry registry;
  ShardedResilienceOptions resilience;
  resilience.registry = &registry;
  const auto result = index.TrySearch(fx.queries, 10, search, resilience, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SameMergedResults(baseline, *result));
  EXPECT_FALSE(result->degraded);
  EXPECT_EQ(result->shards_answered, 3u);
  ASSERT_EQ(result->shard_retries.size(), 3u);
  EXPECT_EQ(result->shard_retries[0], 1u);
  EXPECT_EQ(result->shard_retries[1], 0u);
  EXPECT_EQ(result->shard_retries[2], 0u);
  EXPECT_EQ(registry.GetCounter("song.shard.retries").Value(), 1u);
}

TEST(ShardedFaults, DeadShardDegradesToPartialMerge) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  const SongSearchOptions search = SearchOptions();

  // shard1 fails on every attempt: retries exhaust, partial merge kicks in.
  fault::ScopedFaultSpec scoped("shard1.kernel=1", 7);
  ASSERT_TRUE(scoped.status().ok());
  obs::MetricsRegistry registry;
  ShardedResilienceOptions resilience;
  resilience.registry = &registry;
  const auto result = index.TrySearch(fx.queries, 10, search, resilience, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->shards_total, 3u);
  EXPECT_EQ(result->shards_answered, 2u);
  EXPECT_NEAR(result->Coverage(), 2.0 / 3.0, 1e-12);
  ASSERT_EQ(result->shard_ok.size(), 3u);
  EXPECT_EQ(result->shard_ok[0], 1);
  EXPECT_EQ(result->shard_ok[1], 0);
  EXPECT_EQ(result->shard_ok[2], 1);
  EXPECT_EQ(registry.GetCounter("song.shard.failures").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("song.search.degraded").Value(),
            fx.queries.num());

  // The dead shard's rows may not appear, and the survivors' merge must
  // stay ranked, deduped, and in global-id range.
  const size_t dead_begin = index.shard_data(0).num();
  const size_t dead_end = dead_begin + index.shard_data(1).num();
  for (const auto& neighbors : result->results) {
    EXPECT_FALSE(neighbors.empty());
    std::set<idx_t> ids;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_LT(neighbors[i].id, fx.data.num());
      EXPECT_FALSE(neighbors[i].id >= dead_begin && neighbors[i].id < dead_end)
          << "id " << neighbors[i].id << " came from the dead shard";
      ids.insert(neighbors[i].id);
      if (i > 0) EXPECT_LE(neighbors[i - 1].dist, neighbors[i].dist);
    }
    EXPECT_EQ(ids.size(), neighbors.size());
  }
}

TEST(ShardedFaults, PartialMergeEqualsMergeOfSurvivors) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  const SongSearchOptions search = SearchOptions();

  ShardedSearchResult full;
  {
    fault::ScopedFaultSpec clean("", 0);
    full = index.Search(fx.queries, 10, search, 1);
  }
  fault::ScopedFaultSpec scoped("shard2.kernel=1", 13);
  ASSERT_TRUE(scoped.status().ok());
  const auto partial =
      index.TrySearch(fx.queries, 10, search, ShardedResilienceOptions{}, 1);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(partial->degraded);

  // Dropping shard2 must equal filtering shard2's rows out of the healthy
  // merge and re-taking the top-k — the per-shard searches are independent.
  const size_t dead_begin =
      index.shard_data(0).num() + index.shard_data(1).num();
  for (size_t q = 0; q < full.results.size(); ++q) {
    std::vector<Neighbor> expected;
    for (const Neighbor& n : full.results[q]) {
      if (n.id < dead_begin) expected.push_back(n);
    }
    // The healthy merge only kept k overall, so the filtered list is a
    // prefix-compatible subset: every expected entry must appear in the
    // partial results in the same order.
    ASSERT_GE(partial->results[q].size(), expected.size()) << "query " << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(partial->results[q][i].id, expected[i].id) << "query " << q;
      EXPECT_EQ(partial->results[q][i].dist, expected[i].dist)
          << "query " << q;
    }
  }
}

TEST(ShardedFaults, AllShardsDeadIsUnavailable) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 2);
  fault::ScopedFaultSpec scoped("shard*.kernel=1", 3);
  ASSERT_TRUE(scoped.status().ok());
  const auto result = index.TrySearch(fx.queries, 10, SearchOptions(),
                                      ShardedResilienceOptions{}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ShardedFaults, StrictModeEscalatesSingleShardFailure) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  fault::ScopedFaultSpec scoped("shard1.dtoh=1", 5);
  ASSERT_TRUE(scoped.status().ok());
  ShardedResilienceOptions strict;
  strict.allow_partial = false;
  const auto result =
      index.TrySearch(fx.queries, 10, SearchOptions(), strict, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(ShardedFaults, DimMismatchIsInvalidArgument) {
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 2);
  Dataset wrong(2, fx.data.dim() + 3);
  const auto result = index.TrySearch(wrong, 10, SearchOptions(),
                                      ShardedResilienceOptions{}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedFaults, FallbackSearchSurvivesDeadShard) {
  // The legacy Search() entry point must degrade, not crash, when faults
  // are armed: it logs and returns whatever TrySearch salvaged.
  const ShardFaultFixture& fx = ShardFaultFixture::Get();
  const ShardedSongIndex index = MakeIndex(fx, 3);
  fault::ScopedFaultSpec scoped("shard0.htod=1", 21);
  ASSERT_TRUE(scoped.status().ok());
  const ShardedSearchResult result =
      index.Search(fx.queries, 10, SearchOptions(), 1);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.results.size(), fx.queries.num());
}

}  // namespace
}  // namespace song
