// Tests for the GPU cost model: monotonicity in work, sensitivity to the
// GpuSpec, occupancy/shared-memory behaviour, stage attribution and the
// transfer model — the properties the figure benches rely on.

#include "gpusim/cost_model.h"

#include "gpusim/gpu_spec.h"
#include "gtest/gtest.h"

namespace song {
namespace {

SearchStats MakeStats(size_t num_queries, size_t rows_per_q,
                      size_t cands_per_q, size_t dim_bytes) {
  SearchStats s;
  s.iterations = num_queries * rows_per_q;
  s.vertices_expanded = num_queries * rows_per_q;
  s.graph_rows_loaded = num_queries * rows_per_q;
  s.graph_bytes_loaded = num_queries * rows_per_q * 16 * sizeof(idx_t);
  s.q_pops = num_queries * rows_per_q;
  s.distance_computations = num_queries * cands_per_q;
  s.data_bytes_loaded = num_queries * cands_per_q * dim_bytes;
  s.q_pushes = num_queries * cands_per_q / 2;
  s.topk_pushes = num_queries * rows_per_q;
  s.visited_tests = num_queries * rows_per_q * 16;
  s.visited_insertions = num_queries * cands_per_q / 2;
  s.visited_capacity_bytes = 4096;
  return s;
}

WorkloadShape MakeShape(size_t nq, size_t dim) {
  WorkloadShape shape;
  shape.num_queries = nq;
  shape.dim = dim;
  shape.point_bytes = dim * sizeof(float);
  shape.k = 10;
  shape.queue_size = 64;
  shape.degree = 16;
  return shape;
}

TEST(CostModel, ProducesPositiveTimes) {
  CostModel model(GpuSpec::V100());
  const auto b = model.Estimate(MakeStats(1000, 150, 1500, 512),
                                MakeShape(1000, 128));
  EXPECT_GT(b.kernel_seconds, 0.0);
  EXPECT_GT(b.htod_seconds, 0.0);
  EXPECT_GT(b.dtoh_seconds, 0.0);
  EXPECT_NEAR(b.total_seconds,
              b.kernel_seconds + b.htod_seconds + b.dtoh_seconds, 1e-12);
  EXPECT_GT(b.Qps(1000), 0.0);
}

TEST(CostModel, StagePercentagesSumToHundred) {
  CostModel model(GpuSpec::V100());
  const auto b = model.Estimate(MakeStats(1000, 150, 1500, 512),
                                MakeShape(1000, 128));
  EXPECT_NEAR(b.LocatePct() + b.DistancePct() + b.MaintainPct(), 100.0, 0.1);
  EXPECT_NEAR(b.HtodPct() + b.KernelPct() + b.DtohPct(), 100.0, 0.1);
}

TEST(CostModel, MoreWorkTakesLonger) {
  CostModel model(GpuSpec::V100());
  const auto shape = MakeShape(1000, 128);
  const auto small = model.Estimate(MakeStats(1000, 100, 1000, 512), shape);
  const auto large = model.Estimate(MakeStats(1000, 400, 4000, 512), shape);
  EXPECT_GT(large.kernel_seconds, small.kernel_seconds);
}

TEST(CostModel, FasterGpuIsFaster) {
  // V100 dominates P40 and TITAN X in SMs and bandwidth (paper Fig 13:
  // "gaps ... consistent with the computation power of the GPUs").
  const auto stats = MakeStats(10000, 200, 2000, 512);
  const auto shape = MakeShape(10000, 128);
  const double v100 =
      CostModel(GpuSpec::V100()).Estimate(stats, shape).kernel_seconds;
  const double p40 =
      CostModel(GpuSpec::P40()).Estimate(stats, shape).kernel_seconds;
  const double titanx =
      CostModel(GpuSpec::TitanX()).Estimate(stats, shape).kernel_seconds;
  EXPECT_LT(v100, p40);
  EXPECT_LT(v100, titanx);
  // TITAN X has more bandwidth than P40: for this memory-heavy workload it
  // should not be slower.
  EXPECT_LE(titanx, p40 * 1.05);
}

TEST(CostModel, HigherDimensionShiftsTimeTowardDistanceStage) {
  CostModel model(GpuSpec::V100());
  const auto low = model.Estimate(MakeStats(1000, 150, 1500, 200 * 4),
                                  MakeShape(1000, 200));
  const auto high = model.Estimate(MakeStats(1000, 150, 1500, 960 * 4),
                                   MakeShape(1000, 960));
  EXPECT_GT(high.DistancePct(), low.DistancePct());
}

TEST(CostModel, SmallBatchUnderutilizesGpu) {
  CostModel model(GpuSpec::V100());
  const auto per_q = [&](size_t nq) {
    const auto b = model.Estimate(MakeStats(nq, 150, 1500, 512),
                                  MakeShape(nq, 128));
    return b.total_seconds / static_cast<double>(nq);
  };
  // Per-query cost shrinks as the batch grows (Fig 11).
  EXPECT_GT(per_q(100), per_q(10000));
  EXPECT_GE(per_q(10000), per_q(100000) * 0.5);
}

TEST(CostModel, SpilledVisitedTableIsSlower) {
  CostModel model(GpuSpec::V100());
  const auto shape = MakeShape(1000, 128);
  SearchStats fits = MakeStats(1000, 150, 1500, 512);
  fits.visited_capacity_bytes = 8 * 1024;
  SearchStats spills = fits;
  spills.visited_capacity_bytes = 256 * 1024;
  const auto b_fits = model.Estimate(fits, shape);
  const auto b_spills = model.Estimate(spills, shape);
  EXPECT_TRUE(b_fits.visited_in_shared);
  EXPECT_FALSE(b_spills.visited_in_shared);
  EXPECT_GT(b_spills.kernel_seconds, b_fits.kernel_seconds);
}

TEST(CostModel, MultiQueryReducesOccupancyAndSlowsLocating) {
  CostModel model(GpuSpec::V100());
  auto shape1 = MakeShape(10000, 128);
  auto shape4 = shape1;
  shape4.multi_query = 4;
  const auto stats = MakeStats(10000, 150, 1500, 512);
  const auto b1 = model.Estimate(stats, shape1);
  const auto b4 = model.Estimate(stats, shape4);
  // Paper Fig 8: multi-query does not help; our model charges serialized
  // divergent row fetches and a bigger shared footprint.
  EXPECT_GE(b4.kernel_seconds, b1.kernel_seconds);
  EXPECT_GE(b4.shared_bytes_per_warp, b1.shared_bytes_per_warp * 3.0);
}

TEST(CostModel, TransferShareShrinksWithKernelWork) {
  CostModel model(GpuSpec::V100());
  const auto shape = MakeShape(10000, 200);
  const auto light = model.Estimate(MakeStats(10000, 60, 600, 800), shape);
  const auto heavy = model.Estimate(MakeStats(10000, 2000, 20000, 800),
                                    shape);
  // Paper Fig 10 (left): HtoD percentage decreases with larger K.
  EXPECT_LT(heavy.HtodPct(), light.HtodPct());
}

TEST(CostModel, DtohGrowsWithK) {
  CostModel model(GpuSpec::V100());
  auto shape_small = MakeShape(10000, 200);
  shape_small.k = 50;
  auto shape_large = shape_small;
  shape_large.k = 1000;
  const auto stats = MakeStats(10000, 150, 1500, 800);
  EXPECT_GT(model.Estimate(stats, shape_large).dtoh_seconds,
            model.Estimate(stats, shape_small).dtoh_seconds);
}

TEST(CostModel, SharedBytesAccountsForStructures) {
  CostModel model(GpuSpec::V100());
  auto shape = MakeShape(100, 128);
  const double without = model.SharedBytesPerQuery(shape, 4096, false);
  const double with = model.SharedBytesPerQuery(shape, 4096, true);
  EXPECT_NEAR(with - without, 4096.0, 1e-9);
  EXPECT_GT(without, shape.dim * sizeof(float));
}

TEST(GpuSpec, PresetsAreDistinct) {
  EXPECT_EQ(GpuSpec::V100().TotalCores(), 5120u);
  EXPECT_EQ(GpuSpec::P40().TotalCores(), 3840u);
  EXPECT_EQ(GpuSpec::TitanX().TotalCores(), 3584u);
}

}  // namespace
}  // namespace song
