// Tests for the device-memory planner: the paper's MNIST8m numbers must
// reproduce exactly (24 GB of floats does not fit TITAN X; 128-bit codes
// do; the degree-16 graph is under 1 GB).

#include "gpusim/device_memory.h"

#include "gtest/gtest.h"

namespace song {
namespace {

DeploymentShape Mnist8mShape() {
  DeploymentShape shape;
  shape.num_points = 8090000;
  shape.dim = 784;
  shape.graph_degree = 16;
  return shape;
}

TEST(DeviceMemory, CapacitiesMatchTheCards) {
  EXPECT_EQ(DeviceCapacityBytes(GpuSpec::V100()), 32ull << 30);
  EXPECT_EQ(DeviceCapacityBytes(GpuSpec::P40()), 24ull << 30);
  EXPECT_EQ(DeviceCapacityBytes(GpuSpec::TitanX()), 12ull << 30);
}

TEST(DeviceMemory, Mnist8mDoesNotFitTitanX) {
  // Paper §VIII-H: "MNIST8m (24 GB) cannot fit in the GPU memory of
  // TITAN X" (12 GB).
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::TitanX());
  EXPECT_FALSE(plan.fits);
  EXPECT_NEAR(static_cast<double>(plan.data_bytes) / (1 << 30), 23.6, 0.5);
}

TEST(DeviceMemory, GraphIndexIsUnderOneGigabyte) {
  // Paper §VII: "the 16-degree graph index size of 8 million
  // 784-dimensional data points takes 988 MB".
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::TitanX());
  EXPECT_NEAR(static_cast<double>(plan.graph_bytes) / (1 << 20), 494.0,
              20.0);
  // (The paper's 988 MB counts 8-byte slots; with 4-byte ids it is half.
  // Either way: well under 1 GB.)
  EXPECT_LT(plan.graph_bytes, 1ull << 30);
}

TEST(DeviceMemory, HashingMakesMnist8mFitTitanX) {
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::TitanX());
  ASSERT_FALSE(plan.fits);
  EXPECT_GT(plan.hash_bits_needed, 0u);
  EXPECT_LE(plan.hash_bits_needed, 512u);  // Table IV widths all fit
}

TEST(DeviceMemory, ShardingAlsoFixesIt) {
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::TitanX());
  ASSERT_FALSE(plan.fits);
  EXPECT_GE(plan.shards_needed, 2u);
  EXPECT_LE(plan.shards_needed, 4u);
}

TEST(DeviceMemory, Mnist8mFitsV100) {
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::V100());
  EXPECT_TRUE(plan.fits);
  EXPECT_EQ(plan.hash_bits_needed, 0u);
}

TEST(DeviceMemory, SmallDeploymentAlwaysFits) {
  DeploymentShape shape;
  shape.num_points = 100000;
  shape.dim = 128;
  const MemoryPlan plan = PlanDeployment(shape, GpuSpec::TitanX());
  EXPECT_TRUE(plan.fits);
  EXPECT_FALSE(plan.ToString().empty());
}

TEST(DeviceMemory, ToStringMentionsRemedies) {
  const MemoryPlan plan = PlanDeployment(Mnist8mShape(), GpuSpec::TitanX());
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("DOES NOT FIT"), std::string::npos);
  EXPECT_NE(s.find("hashing"), std::string::npos);
  EXPECT_NE(s.find("shard"), std::string::npos);
}

}  // namespace
}  // namespace song
