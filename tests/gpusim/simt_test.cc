// Tests for the lane-level SIMT executor: warp reductions must equal the
// scalar kernels, the warp probe must behave like linear probing, coalesced
// sector accounting must match the access footprint, and the full
// warp-executed SONG kernel must agree with the host-side searcher.

#include <cmath>
#include <random>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "gpusim/simt_kernel.h"
#include "gpusim/simt_warp.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "song/song_searcher.h"

namespace song {
namespace {

// ---- CycleCounter ----

TEST(CycleCounter, CoalescedLoadCountsUniqueSectors) {
  CycleCounter c(GpuSpec::V100());
  // 128 contiguous bytes starting sector-aligned: exactly 4 sectors.
  alignas(64) static float buffer[64];
  c.GlobalLoad(reinterpret_cast<uintptr_t>(buffer), 128);
  EXPECT_EQ(c.global_sectors(), 4u);
  EXPECT_EQ(c.global_transactions(), 1u);
  EXPECT_EQ(c.GlobalBytes(), 128u);
}

TEST(CycleCounter, MisalignedLoadTouchesExtraSector) {
  CycleCounter c(GpuSpec::V100());
  alignas(64) static float buffer[64];
  c.GlobalLoad(reinterpret_cast<uintptr_t>(buffer) + 4, 128);
  EXPECT_EQ(c.global_sectors(), 5u);
}

TEST(CycleCounter, TotalCyclesReflectsLatencies) {
  const GpuSpec spec = GpuSpec::V100();
  CycleCounter c(spec);
  c.SharedAccess(2);
  c.Fma(10);
  alignas(64) static float buffer[8];
  c.GlobalLoad(reinterpret_cast<uintptr_t>(buffer), 4);
  EXPECT_DOUBLE_EQ(c.TotalCycles(), 10.0 + 2.0 * spec.shared_latency_cycles +
                                        spec.global_latency_cycles);
}

TEST(CycleCounter, ResetClears) {
  CycleCounter c(GpuSpec::V100());
  c.Alu(5);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.TotalCycles(), 0.0);
}

// ---- Warp reductions ----

class WarpReduceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WarpReduceTest, L2MatchesScalarKernel) {
  const size_t dim = GetParam();
  std::mt19937 rng(static_cast<uint32_t>(dim));
  std::normal_distribution<float> d;
  std::vector<float> a(dim), b(dim);
  for (size_t i = 0; i < dim; ++i) {
    a[i] = d(rng);
    b[i] = d(rng);
  }
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  const float got = warp.ReduceL2(a.data(), b.data(), dim);
  const float expect = L2Sqr(a.data(), b.data(), dim);
  EXPECT_NEAR(got, expect, 1e-3f * (1.0f + std::fabs(expect)));
  EXPECT_GT(counter.fma_ops(), 0u);
  EXPECT_GT(counter.shfl_ops(), 0u);
  EXPECT_GE(counter.GlobalBytes(), dim * sizeof(float));
}

TEST_P(WarpReduceTest, InnerProductMatchesScalarKernel) {
  const size_t dim = GetParam();
  std::mt19937 rng(static_cast<uint32_t>(dim) + 7);
  std::normal_distribution<float> d;
  std::vector<float> a(dim), b(dim);
  for (size_t i = 0; i < dim; ++i) {
    a[i] = d(rng);
    b[i] = d(rng);
  }
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  const float got = warp.ReduceInnerProduct(a.data(), b.data(), dim);
  const float expect = InnerProduct(a.data(), b.data(), dim);
  EXPECT_NEAR(got, expect, 1e-3f * (1.0f + std::fabs(expect)));
}

INSTANTIATE_TEST_SUITE_P(Dims, WarpReduceTest,
                         ::testing::Values(1, 7, 31, 32, 33, 64, 128, 200,
                                           784, 960));

TEST(WarpReduce, NarrowLanesForMultiQuery) {
  // 32/4 = 8 lanes must still produce the exact distance.
  const size_t dim = 128;
  std::vector<float> a(dim, 1.0f), b(dim, 3.0f);
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  EXPECT_NEAR(warp.ReduceL2(a.data(), b.data(), dim, 8),
              L2Sqr(a.data(), b.data(), dim), 1e-2f);
}

TEST(WarpReduce, NarrowLanesCostMoreFma) {
  const size_t dim = 128;
  std::vector<float> a(dim, 1.0f), b(dim, 2.0f);
  CycleCounter full(GpuSpec::V100()), narrow(GpuSpec::V100());
  SimtWarp full_warp(&full), narrow_warp(&narrow);
  full_warp.ReduceL2(a.data(), b.data(), dim, 32);
  narrow_warp.ReduceL2(a.data(), b.data(), dim, 8);
  EXPECT_GT(narrow.fma_ops(), full.fma_ops());
}

TEST(WarpReduce, ShflDownSumExact) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  std::array<float, 32> values{};
  float expect = 0.0f;
  for (size_t i = 0; i < 32; ++i) {
    values[i] = static_cast<float>(i + 1);
    expect += values[i];
  }
  EXPECT_FLOAT_EQ(warp.ShflDownSum(values), expect);
  EXPECT_EQ(counter.shfl_ops(), 5u);  // log2(32) levels
}

// ---- Warp probe ----

TEST(WarpProbe, FindsKeyAndEmpty) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  std::vector<idx_t> slots(64, kInvalidIdx);
  // Linear-probing layout: keys sit in a contiguous run from their probe
  // start (a probe stops at the first empty slot).
  slots[0] = 10;
  slots[1] = 11;
  slots[2] = 42;
  // Key present: lands on its slot.
  EXPECT_EQ(warp.ParallelProbe(slots.data(), slots.size(), 0, 42,
                               kInvalidIdx),
            2u);
  // Key absent: stops at the first empty slot after the run.
  EXPECT_EQ(warp.ParallelProbe(slots.data(), slots.size(), 0, 99,
                               kInvalidIdx),
            3u);
}

TEST(WarpProbe, WrapsAroundTable) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  std::vector<idx_t> slots(64, 1);  // all occupied by key 1
  slots[2] = kInvalidIdx;
  EXPECT_EQ(warp.ParallelProbe(slots.data(), slots.size(), 60, 7,
                               kInvalidIdx),
            2u);
}

TEST(WarpProbe, FullTableWithoutKeyReturnsSlotCount) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  std::vector<idx_t> slots(64, 1);
  EXPECT_EQ(warp.ParallelProbe(slots.data(), slots.size(), 0, 7,
                               kInvalidIdx),
            64u);
}

TEST(WarpProbe, InsertProbeReusesTombstoneBeforeEmptyOnly) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  const idx_t kEmpty = kInvalidIdx;
  const idx_t kTomb = kInvalidIdx - 1;
  // Probe order from 0: [tomb, occupied, empty, ...]: insert must land on
  // the tombstone (slot 0), not the empty.
  std::vector<idx_t> slots(64, kEmpty);
  slots[0] = kTomb;
  slots[1] = 7;
  auto r = warp.ParallelProbeInsert(slots.data(), slots.size(), 0, 9, kEmpty,
                                    kTomb);
  EXPECT_FALSE(r.found_key);
  EXPECT_EQ(r.insert_slot, 0u);
  // Key before the empty is found.
  r = warp.ParallelProbeInsert(slots.data(), slots.size(), 0, 7, kEmpty,
                               kTomb);
  EXPECT_TRUE(r.found_key);
  EXPECT_EQ(r.insert_slot, 1u);
  // A tombstone BEYOND the stopping empty must not be used: probe from 2.
  slots[5] = kTomb;
  r = warp.ParallelProbeInsert(slots.data(), slots.size(), 2, 9, kEmpty,
                               kTomb);
  EXPECT_EQ(r.insert_slot, 2u);  // the empty, not slot 5's tombstone
}

TEST(WarpProbe, FuzzInsertTestEraseAgainstOracle) {
  // The §IV-E workload: bounded insert/erase churn. The warp-probed slot
  // array must agree with a std::set at every step (this caught a real
  // wraparound bug during development).
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  const idx_t kEmpty = kInvalidIdx;
  const idx_t kTomb = kInvalidIdx - 1;
  std::vector<idx_t> slots(512, kEmpty);
  std::set<idx_t> oracle;
  std::mt19937 rng(99);
  auto home = [&](idx_t key) {
    uint64_t x = key;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<size_t>(x) & (slots.size() - 1);
  };
  for (int op = 0; op < 100000; ++op) {
    const idx_t key = rng() % 2000;
    const int action = rng() % 3;
    if (action == 0 && oracle.size() < 192) {
      const auto r = warp.ParallelProbeInsert(slots.data(), slots.size(),
                                              home(key), key, kEmpty, kTomb);
      const bool oracle_inserted = oracle.insert(key).second;
      ASSERT_EQ(!r.found_key, oracle_inserted) << "op " << op;
      if (!r.found_key) {
        ASSERT_LT(r.insert_slot, slots.size());
        slots[r.insert_slot] = key;
      }
    } else if (action == 1) {
      const size_t pos = warp.ParallelProbe(slots.data(), slots.size(),
                                            home(key), key, kEmpty);
      const bool present = pos < slots.size() && slots[pos] == key;
      ASSERT_EQ(present, oracle.count(key) > 0) << "op " << op;
      if (present) {
        slots[pos] = kTomb;
        oracle.erase(key);
      }
    } else {
      const size_t pos = warp.ParallelProbe(slots.data(), slots.size(),
                                            home(key), key, kEmpty);
      const bool present = pos < slots.size() && slots[pos] == key;
      ASSERT_EQ(present, oracle.count(key) > 0) << "op " << op << " key "
                                                << key;
    }
  }
}

TEST(WarpProbe, OneRoundCostsOneSharedAccess) {
  CycleCounter counter(GpuSpec::V100());
  SimtWarp warp(&counter);
  std::vector<idx_t> slots(64, kInvalidIdx);
  warp.ParallelProbe(slots.data(), slots.size(), 0, 9, kInvalidIdx);
  EXPECT_EQ(counter.shared_accesses(), 1u);  // hit in the first 32 slots
}

// ---- Full kernel vs host searcher ----

struct SimtFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  std::vector<std::vector<idx_t>> gt10;

  static const SimtFixture& Get() {
    static SimtFixture* f = [] {
      auto* fx = new SimtFixture();
      SyntheticSpec spec;
      spec.name = "simt";
      spec.dim = 48;
      spec.num_points = 2000;
      spec.num_queries = 25;
      spec.num_clusters = 10;
      spec.cluster_std = 0.5;
      spec.seed = 777;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->gt10 = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 1));
      return fx;
    }();
    return *f;
  }
};

TEST(SimtSongKernel, DistancesMatchScalarExactlyPerId) {
  const SimtFixture& fx = SimtFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 48;
  const SimtKernelResult result = kernel.Search(fx.queries.Row(0), 10,
                                                options);
  ASSERT_FALSE(result.topk.empty());
  for (const Neighbor& n : result.topk) {
    const float expect =
        L2Sqr(fx.queries.Row(0), fx.data.Row(n.id), fx.data.dim());
    EXPECT_NEAR(n.dist, expect, 1e-3f * (1.0f + expect));
  }
}

TEST(SimtSongKernel, RecallMatchesHostSearcher) {
  const SimtFixture& fx = SimtFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearcher host(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 64;
  std::vector<std::vector<idx_t>> warp_ids(fx.queries.num());
  std::vector<std::vector<idx_t>> host_ids(fx.queries.num());
  SongWorkspace ws;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const float* query = fx.queries.Row(static_cast<idx_t>(q));
    for (const Neighbor& n : kernel.Search(query, 10, options).topk) {
      warp_ids[q].push_back(n.id);
    }
    for (const Neighbor& n : host.Search(query, 10, options, &ws)) {
      host_ids[q].push_back(n.id);
    }
  }
  const double warp_recall = MeanRecallAtK(warp_ids, fx.gt10, 10);
  const double host_recall = MeanRecallAtK(host_ids, fx.gt10, 10);
  // Summation order differs (strided lanes vs unrolled scalar), so ties may
  // resolve differently; recall must agree closely.
  EXPECT_NEAR(warp_recall, host_recall, 0.03);
  EXPECT_GE(warp_recall, 0.85);
}

TEST(SimtSongKernel, StageCyclesArePositiveAndOrdered) {
  const SimtFixture& fx = SimtFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 64;
  const SimtKernelResult result = kernel.Search(fx.queries.Row(1), 10,
                                                options);
  EXPECT_GT(result.locate_cycles, 0.0);
  EXPECT_GT(result.distance_cycles, 0.0);
  EXPECT_GT(result.maintain_cycles, 0.0);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_GT(result.global_bytes,
            result.distance_computations * fx.data.dim() * sizeof(float) /
                2);
}

TEST(SimtSongKernel, MultiQueryNarrowsLanesAndRaisesDistanceCycles) {
  const SimtFixture& fx = SimtFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions one = SongSearchOptions::HashTableSelDel();
  one.queue_size = 64;
  SongSearchOptions four = one;
  four.multi_query = 4;
  const auto r1 = kernel.Search(fx.queries.Row(2), 10, one);
  const auto r4 = kernel.Search(fx.queries.Row(2), 10, four);
  const double per_dist_1 =
      r1.distance_cycles / static_cast<double>(r1.distance_computations);
  const double per_dist_4 =
      r4.distance_cycles / static_cast<double>(r4.distance_computations);
  EXPECT_GT(per_dist_4, per_dist_1);
}

TEST(SimtSongKernel, GistLikeDimsShiftCyclesTowardDistance) {
  // Same graph topology, fatter vectors -> distance share of the executed
  // cycles must grow (the Fig 10 GIST-vs-GloVe effect, here from the
  // executed instruction stream rather than the analytic model).
  SyntheticSpec narrow;
  narrow.dim = 64;
  narrow.num_points = 1500;
  narrow.num_queries = 5;
  narrow.num_clusters = 8;
  narrow.seed = 4242;
  SyntheticSpec wide = narrow;
  wide.dim = 768;
  auto share = [](const SyntheticSpec& spec) {
    SyntheticData gen = GenerateSynthetic(spec);
    NswBuildOptions nsw;
    nsw.num_threads = 1;
    const FixedDegreeGraph graph =
        NswBuilder::Build(gen.points, Metric::kL2, nsw);
    SimtSongKernel kernel(&gen.points, &graph, Metric::kL2);
    SongSearchOptions options = SongSearchOptions::HashTableSelDel();
    options.queue_size = 48;
    double dist = 0.0, total = 0.0;
    for (size_t q = 0; q < gen.queries.num(); ++q) {
      const auto r =
          kernel.Search(gen.queries.Row(static_cast<idx_t>(q)), 10, options);
      dist += r.distance_cycles;
      total += r.TotalCycles();
    }
    return dist / total;
  };
  EXPECT_GT(share(wide), share(narrow));
}

TEST(SimtSongKernel, VisitedDeletionKeepsTableSmallEnoughToStayCorrect) {
  const SimtFixture& fx = SimtFixture::Get();
  SimtSongKernel kernel(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 16;  // tiny table: 2*16+64 entries
  const auto result = kernel.Search(fx.queries.Row(3), 10, options);
  EXPECT_EQ(result.topk.size(), 10u);
  for (size_t i = 1; i < result.topk.size(); ++i) {
    EXPECT_LE(result.topk[i - 1].dist, result.topk[i].dist);
  }
}

}  // namespace
}  // namespace song
