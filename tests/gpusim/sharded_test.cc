// Tests for the multi-GPU sharding extension (paper §VII's scalability
// suggestion): shard construction, global-id translation, merge semantics,
// recall parity with the single-index deployment, and the parallel-cards
// cost model.

#include "gpusim/sharded.h"

#include <set>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace song {
namespace {

struct ShardFixture {
  Dataset data;
  Dataset queries;
  std::vector<std::vector<idx_t>> gt10;

  static const ShardFixture& Get() {
    static ShardFixture* f = [] {
      auto* fx = new ShardFixture();
      SyntheticSpec spec;
      spec.name = "shards";
      spec.dim = 32;
      spec.num_points = 4000;
      spec.num_queries = 30;
      spec.num_clusters = 12;
      spec.cluster_std = 0.5;
      spec.seed = 555;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->gt10 = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 1));
      return fx;
    }();
    return *f;
  }
};

TEST(ShardedSongIndex, SplitsDataAcrossShards) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  EXPECT_EQ(index.num_shards(), 4u);
  size_t total = 0;
  for (size_t s = 0; s < index.num_shards(); ++s) {
    total += index.shard_data(s).num();
    EXPECT_EQ(index.shard_graph(s).num_vertices(), index.shard_data(s).num());
  }
  EXPECT_EQ(total, fx.data.num());
}

TEST(ShardedSongIndex, MoreShardsThanPointsClamped) {
  Dataset tiny(3, 4);
  ShardedBuildOptions options;
  options.num_shards = 10;
  ShardedSongIndex index(&tiny, Metric::kL2, options);
  EXPECT_LE(index.num_shards(), 3u);
}

TEST(ShardedSongIndex, ResultsUseGlobalIdsSortedUnique) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 3;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  SongSearchOptions search = SongSearchOptions::HashTableSelDel();
  search.queue_size = 64;
  const ShardedSearchResult result = index.Search(fx.queries, 10, search, 1);
  ASSERT_EQ(result.results.size(), fx.queries.num());
  for (const auto& neighbors : result.results) {
    EXPECT_EQ(neighbors.size(), 10u);
    std::set<idx_t> ids;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_LT(neighbors[i].id, fx.data.num());  // global range
      ids.insert(neighbors[i].id);
      if (i > 0) EXPECT_LE(neighbors[i - 1].dist, neighbors[i].dist);
    }
    EXPECT_EQ(ids.size(), neighbors.size());  // merge produced no dups
  }
}

TEST(ShardedSongIndex, DistancesMatchGlobalData) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 2;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  SongSearchOptions search;
  search.queue_size = 32;
  const ShardedSearchResult result = index.Search(fx.queries, 5, search, 1);
  for (size_t q = 0; q < 5; ++q) {
    for (const Neighbor& n : result.results[q]) {
      const float expect = L2Sqr(fx.queries.Row(static_cast<idx_t>(q)),
                                 fx.data.Row(n.id), fx.data.dim());
      EXPECT_FLOAT_EQ(n.dist, expect);
    }
  }
}

TEST(ShardedSongIndex, RecallComparableToSingleIndex) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  SongSearchOptions search = SongSearchOptions::HashTableSelDel();
  search.queue_size = 96;
  const ShardedSearchResult result = index.Search(fx.queries, 10, search, 1);
  std::vector<std::vector<idx_t>> ids(result.results.size());
  for (size_t q = 0; q < result.results.size(); ++q) {
    for (const Neighbor& n : result.results[q]) ids[q].push_back(n.id);
  }
  // Sharding searches every shard with the full budget, so recall is at
  // least as good as a single index at the same queue size.
  EXPECT_GE(MeanRecallAtK(ids, fx.gt10, 10), 0.9);
}

TEST(ShardedSongIndex, GpuEstimateTakesSlowestCard) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 2;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  SongSearchOptions search = SongSearchOptions::HashTableSelDel();
  search.queue_size = 64;
  const ShardedSearchResult result = index.Search(fx.queries, 10, search, 1);

  const ShardedGpuEstimate fast = index.EstimateGpu(
      result, {GpuSpec::V100(), GpuSpec::V100()}, fx.queries.num(), 10,
      search);
  const ShardedGpuEstimate mixed = index.EstimateGpu(
      result, {GpuSpec::V100(), GpuSpec::P40()}, fx.queries.num(), 10,
      search);
  EXPECT_EQ(fast.shard_kernel_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(
      fast.kernel_seconds,
      std::max(fast.shard_kernel_seconds[0], fast.shard_kernel_seconds[1]));
  // A slower card in the pair cannot make the deployment faster.
  EXPECT_GE(mixed.kernel_seconds, fast.kernel_seconds);
  EXPECT_GT(fast.Qps(fx.queries.num()), 0.0);
  EXPECT_GT(fast.merge_seconds, 0.0);
}

TEST(ShardedSongIndex, MismatchedGpuCountAborts) {
  const ShardFixture& fx = ShardFixture::Get();
  ShardedBuildOptions options;
  options.num_shards = 2;
  options.num_threads = 1;
  ShardedSongIndex index(&fx.data, Metric::kL2, options);
  SongSearchOptions search;
  const ShardedSearchResult result = index.Search(fx.queries, 5, search, 1);
  EXPECT_DEATH(index.EstimateGpu(result, {GpuSpec::V100()},
                                 fx.queries.num(), 5, search),
               "one GpuSpec per shard");
}

}  // namespace
}  // namespace song
