// Integration tests for the telemetry wiring: tracing must be a pure
// observer (identical results and work counters with and without it), the
// batch metrics must mirror the aggregate SearchStats exactly, and traced
// stage spans priced through StageUnitCosts must agree with the cost
// model's kernel-time attribution — the invariant the Chrome-trace
// validator (tools/validate_telemetry.py) checks on exported files.

#include <cmath>
#include <string>
#include <vector>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/exporters.h"
#include "song/batch_engine.h"

namespace song {
namespace {

struct Fixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  std::vector<std::vector<idx_t>> ground_truth;

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      SyntheticSpec spec;
      spec.name = "obs-test";
      spec.dim = 20;
      spec.num_points = 2000;
      spec.num_queries = 32;
      spec.num_clusters = 8;
      spec.cluster_std = 0.4;
      spec.seed = 4242;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 16;
      nsw.num_threads = 1;  // deterministic graph
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->ground_truth = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 1));
      return fx;
    }();
    return *f;
  }
};

TEST(TraceIntegration, TracingIsAPureObserver) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, /*num_threads=*/2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 48;

  const BatchResult plain = engine.Search(fx.queries, 10, options);

  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  telemetry.trace_sample_period = 1;  // trace every query
  const BatchResult traced = engine.Search(fx.queries, 10, options,
                                           telemetry);

  // Same neighbors, same recall.
  ASSERT_EQ(traced.results.size(), plain.results.size());
  for (size_t q = 0; q < plain.results.size(); ++q) {
    ASSERT_EQ(traced.results[q].size(), plain.results[q].size()) << q;
    for (size_t i = 0; i < plain.results[q].size(); ++i) {
      EXPECT_EQ(traced.results[q][i].id, plain.results[q][i].id);
    }
  }
  EXPECT_DOUBLE_EQ(MeanRecallAtK(traced.Ids(), fx.ground_truth, 10),
                   MeanRecallAtK(plain.Ids(), fx.ground_truth, 10));

  // Same visited-vertex and work counters: tracing observed, not perturbed.
  EXPECT_EQ(traced.stats.iterations, plain.stats.iterations);
  EXPECT_EQ(traced.stats.vertices_expanded, plain.stats.vertices_expanded);
  EXPECT_EQ(traced.stats.distance_computations,
            plain.stats.distance_computations);
  EXPECT_EQ(traced.stats.visited_insertions, plain.stats.visited_insertions);
  EXPECT_EQ(traced.stats.visited_deletions, plain.stats.visited_deletions);
  EXPECT_EQ(traced.stats.q_pushes, plain.stats.q_pushes);

  // Period 1 traces every query, ordered by query id.
  ASSERT_EQ(traced.traces.size(), fx.queries.num());
  EXPECT_EQ(traced.traces_dropped, 0u);
  for (size_t q = 0; q < traced.traces.size(); ++q) {
    EXPECT_EQ(traced.traces[q].query_id, q);
    EXPECT_EQ(traced.traces[q].config, options.Name());
  }

  // Untraced runs carry no traces.
  EXPECT_TRUE(plain.traces.empty());
}

TEST(TraceIntegration, RegistryMirrorsAggregateStats) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, /*num_threads=*/2);
  const SongSearchOptions options = SongSearchOptions::HashTable();

  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  telemetry.trace_sample_period = 4;
  const BatchResult batch = engine.Search(fx.queries, 10, options, telemetry);

  EXPECT_EQ(registry.GetCounter("song.batch.queries").Value(),
            batch.num_queries);
  EXPECT_EQ(registry.GetCounter("song.search.iterations").Value(),
            batch.stats.iterations);
  EXPECT_EQ(registry.GetCounter("song.search.distance_computations").Value(),
            batch.stats.distance_computations);
  EXPECT_EQ(registry.GetCounter("song.search.visited_tests").Value(),
            batch.stats.visited_tests);
  EXPECT_EQ(registry.GetCounter("song.trace.sampled").Value(),
            batch.traces.size());
  EXPECT_EQ(registry.GetHistogram("song.query.latency_us").Count(),
            batch.num_queries);

  // Deterministic sampler: the same batch re-run samples the same queries.
  const BatchResult again = engine.Search(fx.queries, 10, options, telemetry);
  ASSERT_EQ(again.traces.size(), batch.traces.size());
  for (size_t i = 0; i < batch.traces.size(); ++i) {
    EXPECT_EQ(again.traces[i].query_id, batch.traces[i].query_id);
    EXPECT_EQ(again.traces[i].rows.size(), batch.traces[i].rows.size());
  }
}

// With every query traced, the per-query stage spans priced through
// StageUnitCosts must sum to the same stage attribution the analytic model
// reports for the batch — the Chrome-trace acceptance invariant (<1%).
TEST(TraceIntegration, TraceSpansMatchCostModelAttribution) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  const GpuSpec spec = GpuSpec::V100();

  for (const SongSearchOptions& options :
       {SongSearchOptions::HashTable(), SongSearchOptions::HashTableSelDel(),
        SongSearchOptions::Cuckoo()}) {
    obs::MetricsRegistry registry;
    BatchTelemetry telemetry;
    telemetry.registry = &registry;
    telemetry.trace_sample_period = 1;
    const SimulatedRun run = SimulateBatch(searcher, fx.queries, 10, options,
                                           spec, /*num_threads=*/2,
                                           telemetry);
    ASSERT_EQ(run.batch.traces.size(), fx.queries.num());

    const CostModel model(spec);
    const StageUnitCosts unit =
        model.UnitCosts(run.shape, run.gpu.visited_in_shared);
    TraceStageCycles total;
    for (const obs::SearchTrace& t : run.batch.traces) {
      const TraceStageCycles c = model.PriceTrace(t, unit);
      total.locate += c.locate;
      total.distance += c.distance;
      total.maintain += c.maintain;
    }
    ASSERT_GT(total.Total(), 0.0);
    ASSERT_GT(run.gpu.kernel_seconds, 0.0);

    // Stage shares of the traced spans vs the model's attribution.
    const double span_locate = total.locate / total.Total();
    const double span_distance = total.distance / total.Total();
    const double span_maintain = total.maintain / total.Total();
    EXPECT_NEAR(span_locate, run.gpu.locate_seconds / run.gpu.kernel_seconds,
                0.01)
        << options.Name();
    EXPECT_NEAR(span_distance,
                run.gpu.distance_seconds / run.gpu.kernel_seconds, 0.01)
        << options.Name();
    EXPECT_NEAR(span_maintain,
                run.gpu.maintain_seconds / run.gpu.kernel_seconds, 0.01)
        << options.Name();

    // The stage seconds themselves partition the kernel time.
    EXPECT_NEAR(run.gpu.locate_seconds + run.gpu.distance_seconds +
                    run.gpu.maintain_seconds,
                run.gpu.kernel_seconds, 0.01 * run.gpu.kernel_seconds);

    // The exporters accept the run end-to-end (format sanity; full schema
    // validation lives in tools/validate_telemetry.py).
    obs::ChromeTraceContext context;
    context.model = &model;
    context.shape = run.shape;
    context.breakdown = run.gpu;
    context.num_queries = run.batch.num_queries;
    const std::string chrome =
        obs::TracesToChromeJson(run.batch.traces, context);
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.find("\"otherData\""), std::string::npos);
    const std::string prom = obs::MetricsToPrometheusText(registry);
    EXPECT_NE(prom.find("song_search_distance_computations"),
              std::string::npos);
    const std::string json = obs::MetricsToJson(registry);
    EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  }
}

}  // namespace
}  // namespace song
