// Unit tests for the observability metrics primitives: log-scale histogram
// percentiles against a sorted-vector oracle, registry behavior under a
// thread pool, and the counter/gauge basics.

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.h"
#include "gtest/gtest.h"

namespace song::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(Histogram, BucketIndexIsMonotoneAndBounded) {
  int prev = -1;
  for (double v = 1e-10; v < 1e12; v *= 1.7) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    ASSERT_GE(idx, prev) << "bucket index not monotone at " << v;
    prev = idx;
    // The bucket's upper bound must actually bound the value.
    EXPECT_LE(v, Histogram::BucketUpperBound(idx) * (1.0 + 1e-12));
  }
  // Degenerate inputs land in bucket 0 instead of crashing.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  h.Observe(3.0);
  h.Observe(1.0);
  h.Observe(10.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.ObservedMin(), 1.0);
  EXPECT_DOUBLE_EQ(h.ObservedMax(), 10.0);
}

// Percentiles vs a sorted-vector oracle. The histogram's buckets are
// 2^(1/8) wide (~9% relative), and the estimate is the bucket's geometric
// midpoint, so the estimate must sit within ~one bucket of the exact order
// statistic.
TEST(Histogram, PercentileMatchesSortedOracle) {
  std::mt19937_64 rng(20260806);
  // Log-uniform values spanning 6 decades — the shape of latency data.
  std::uniform_real_distribution<double> exponent(-3.0, 3.0);
  const size_t n = 20000;
  Histogram h;
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = std::pow(10.0, exponent(rng));
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    const double oracle = values[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
    const double est = h.Percentile(p);
    // One bucket of relative error (2^(1/8) ~ 1.0905) plus slack for the
    // rank landing at a bucket edge.
    EXPECT_NEAR(est / oracle, 1.0, 0.13)
        << "p" << p << ": est " << est << " oracle " << oracle;
  }
  // Extremes clamp into the observed range.
  EXPECT_GE(h.Percentile(0), h.ObservedMin());
  EXPECT_LE(h.Percentile(0), h.ObservedMin() * 1.10);
  EXPECT_LE(h.Percentile(100), h.ObservedMax());
  EXPECT_GE(h.Percentile(100), h.ObservedMax() / 1.10);
}

TEST(Histogram, SingleValuePercentilesAreExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(42.0);
  // All mass in one bucket: clamping to observed min/max makes every
  // percentile exact.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 42.0);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("song.test.counter");
  Counter& b = registry.GetCounter("song.test.counter");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3u);
  EXPECT_NE(static_cast<void*>(&registry.GetGauge("song.test.counter")),
            static_cast<void*>(&a));  // separate namespaces per metric kind
}

TEST(MetricsRegistry, SnapshotsAreSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zzz");
  registry.GetCounter("aaa");
  registry.GetCounter("mmm");
  const auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "aaa");
  EXPECT_EQ(counters[1].first, "mmm");
  EXPECT_EQ(counters[2].first, "zzz");
}

// Hammer one registry from a thread pool: resolution races must not lose
// metrics, and relaxed-atomic updates must not lose increments.
TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  const size_t kThreads = 8;
  const size_t kPerThread = 20000;
  ParallelFor(kThreads, kThreads, [&](size_t task, size_t) {
    Counter& c = registry.GetCounter("song.test.shared");
    Histogram& h = registry.GetHistogram("song.test.latency");
    Counter& own =
        registry.GetCounter("song.test.t" + std::to_string(task));
    for (size_t i = 0; i < kPerThread; ++i) {
      c.Increment();
      own.Increment();
      h.Observe(static_cast<double>(i % 512 + 1));
    }
  });
  EXPECT_EQ(registry.GetCounter("song.test.shared").Value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.GetHistogram("song.test.latency").Count(),
            kThreads * kPerThread);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("song.test.t" + std::to_string(t)).Value(),
              kPerThread);
  }
  // 8 shared + 8 per-thread counters, nothing lost or duplicated.
  EXPECT_EQ(registry.Counters().size(), kThreads + 1);
}

}  // namespace
}  // namespace song::obs
