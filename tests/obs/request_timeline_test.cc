// Request-lifecycle observability tests: RequestTimeline stage clamping and
// the telescoping total, RequestRecord::Make, the song.req.* metric family,
// bit-identity of the checked paths with telemetry off, lifecycle records
// emitted through BatchEngine / SongSearcher / IndexSnapshot (with the MVCC
// snapshot version stamped in), and budget terminations surfacing in
// SearchTrace and the trace exporters.

#include "obs/request_timeline.h"

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "song/batch_engine.h"
#include "song/mutable_index.h"
#include "song/song_searcher.h"

namespace song {
namespace {

struct LifecycleFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;

  static const LifecycleFixture& Get() {
    static LifecycleFixture* f = [] {
      auto* fx = new LifecycleFixture();
      SyntheticSpec spec;
      spec.name = "lifecycle";
      spec.dim = 12;
      spec.num_points = 1500;
      spec.num_queries = 12;
      spec.seed = 4242;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 8;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      return fx;
    }();
    return *f;
  }
};

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].dist != b[i].dist) return false;
  }
  return true;
}

TEST(RequestTimeline, StagesClampToZeroAndTotalTelescopes) {
  obs::RequestTimeline tl;
  tl.enqueue_us = 0.0;
  tl.admitted_us = 3.25;
  tl.batched_us = 4.0;
  tl.search_begin_us = 5.5;
  tl.complete_us = 105.5;
  EXPECT_FLOAT_EQ(tl.QueueUs(), 3.25f);
  EXPECT_FLOAT_EQ(tl.BatchFormUs(), 2.25f);
  EXPECT_FLOAT_EQ(tl.SearchUs(), 100.0f);
  // TotalUs is defined as the float sum of the stages, so the telescoping
  // identity the validator enforces holds exactly per record.
  EXPECT_FLOAT_EQ(tl.TotalUs(), tl.QueueUs() + tl.BatchFormUs() +
                                    tl.SearchUs());

  // A stage whose end stamp precedes its begin stamp (clock skew, or a
  // stamp left at its epoch default) clamps to zero instead of going
  // negative — histograms must never see a negative duration.
  obs::RequestTimeline skewed;
  skewed.enqueue_us = 10.0;
  skewed.admitted_us = 12.0;
  skewed.search_begin_us = 11.0;  // before admitted: clamps
  skewed.complete_us = 11.5;
  EXPECT_FLOAT_EQ(skewed.QueueUs(), 2.0f);
  EXPECT_FLOAT_EQ(skewed.BatchFormUs(), 0.0f);
  EXPECT_FLOAT_EQ(skewed.SearchUs(), 0.5f);
  EXPECT_FLOAT_EQ(skewed.TotalUs(), 2.5f);
}

TEST(RequestRecord, MakePopulatesEveryField) {
  obs::RequestTimeline tl;
  tl.admitted_us = 1.0;
  tl.search_begin_us = 2.0;
  tl.complete_us = 5.0;
  const obs::RequestRecord r = obs::RequestRecord::Make(
      99, 0xdeadbeefull, tl, StatusCode::kResourceExhausted,
      /*degraded=*/true, /*rejected=*/false, /*snapshot_version=*/12);
  EXPECT_EQ(r.request_id, 99u);
  EXPECT_EQ(r.options_digest, 0xdeadbeefull);
  EXPECT_EQ(r.snapshot_version, 12u);
  EXPECT_FLOAT_EQ(r.queue_us, 1.0f);
  EXPECT_FLOAT_EQ(r.batch_form_us, 1.0f);
  EXPECT_FLOAT_EQ(r.search_us, 3.0f);
  EXPECT_FLOAT_EQ(r.total_us, 5.0f);
  EXPECT_EQ(r.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.degraded, 1u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.shards_answered, 0u);
  EXPECT_EQ(r.shards_total, 0u);
}

TEST(RequestMetricsFamily, HistogramsTelescopeAndOutcomesCount) {
  obs::MetricsRegistry registry;
  const obs::RequestMetrics metrics(&registry);
  ASSERT_TRUE(metrics.enabled());

  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 500.0);
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    obs::RequestTimeline tl;
    tl.admitted_us = dist(rng);
    tl.batched_us = tl.admitted_us + dist(rng);
    tl.search_begin_us = tl.batched_us + dist(rng);
    tl.complete_us = tl.search_begin_us + dist(rng);
    const StatusCode code =
        (i % 5 == 0) ? StatusCode::kUnavailable : StatusCode::kOk;
    metrics.Record(obs::RequestRecord::Make(i, 0x1, tl, code,
                                            /*degraded=*/false,
                                            /*rejected=*/false));
  }

  auto& queue = registry.GetHistogram("song.req.queue_us");
  auto& batch_form = registry.GetHistogram("song.req.batch_form_us");
  auto& search = registry.GetHistogram("song.req.search_us");
  auto& total = registry.GetHistogram("song.req.total_us");
  EXPECT_EQ(queue.Count(), kRecords);
  EXPECT_EQ(batch_form.Count(), kRecords);
  EXPECT_EQ(search.Count(), kRecords);
  EXPECT_EQ(total.Count(), kRecords);
  // The invariant tools/validate_telemetry.py checks on every --statusz
  // dump: stage sums telescope to the total within float-rounding slack.
  EXPECT_NEAR(queue.Sum() + batch_form.Sum() + search.Sum(), total.Sum(),
              total.Sum() * 1e-3);

  EXPECT_EQ(registry.GetCounter("song.req.outcome.ok").Value(),
            static_cast<uint64_t>(kRecords - kRecords / 5));
  EXPECT_EQ(registry.GetCounter("song.req.outcome.unavailable").Value(),
            static_cast<uint64_t>(kRecords / 5));
}

TEST(RequestMetricsFamily, NullRegistryIsANoop) {
  const obs::RequestMetrics metrics(nullptr);
  EXPECT_FALSE(metrics.enabled());
  obs::RequestTimeline tl;
  tl.complete_us = 5.0;
  metrics.Record(obs::RequestRecord::Make(1, 0x1, tl, StatusCode::kOk,
                                          false, false));  // must not crash
}

TEST(BatchLifecycle, TelemetryOffIsBitIdenticalToPlainSearch) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 2);
  SongSearchOptions options;
  options.queue_size = 64;

  const BatchResult plain = engine.Search(fx.queries, 10, options);

  // Telemetry fully off (default BatchTelemetry{}).
  const auto off = engine.TrySearch(fx.queries, 10, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Telemetry fully on: registry + flight recorder armed.
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(64);
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  telemetry.flight_recorder = &recorder;
  const auto on = engine.TrySearch(fx.queries, 10, options, telemetry);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  ASSERT_EQ(plain.results.size(), fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    EXPECT_TRUE(SameNeighbors(plain.results[q], off->results[q]))
        << "telemetry-off TrySearch diverged at query " << q;
    EXPECT_TRUE(SameNeighbors(plain.results[q], on->results[q]))
        << "telemetry-on TrySearch diverged at query " << q;
  }

  // The armed run recorded one lifecycle record per query, all OK, with
  // the song.req.* histogram family populated to match.
  EXPECT_EQ(recorder.total_recorded(), fx.queries.num());
  EXPECT_EQ(registry.GetHistogram("song.req.total_us").Count(),
            fx.queries.num());
  EXPECT_EQ(registry.GetCounter("song.req.outcome.ok").Value(),
            fx.queries.num());
  for (const obs::RequestRecord& r : recorder.Snapshot()) {
    EXPECT_EQ(r.code(), StatusCode::kOk);
    EXPECT_EQ(r.rejected, 0u);
    EXPECT_FLOAT_EQ(r.total_us,
                    r.queue_us + r.batch_form_us + r.search_us);
  }
}

TEST(BatchLifecycle, RejectedQueryLandsInRingAsInvalidArgument) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);

  Dataset mixed(2, fx.data.dim());
  std::vector<float> row(fx.data.dim());
  for (size_t d = 0; d < row.size(); ++d) row[d] = fx.queries.Row(0)[d];
  mixed.SetRow(0, row.data());
  row[1] = std::numeric_limits<float>::quiet_NaN();
  mixed.SetRow(1, row.data());

  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(16);
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  telemetry.flight_recorder = &recorder;
  const auto result = engine.TrySearch(mixed, 5, SongSearchOptions{},
                                       telemetry);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->queries_rejected, 1u);

  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  size_t rejected_seen = 0;
  for (const obs::RequestRecord& r : records) {
    if (r.rejected) {
      ++rejected_seen;
      EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
      EXPECT_FLOAT_EQ(r.search_us, 0.0f);  // never reached the searcher
    } else {
      EXPECT_EQ(r.code(), StatusCode::kOk);
    }
  }
  EXPECT_EQ(rejected_seen, 1u);
  EXPECT_EQ(registry.GetCounter("song.req.outcome.invalid_argument").Value(),
            1u);
}

TEST(BatchLifecycle, BatchRefusalEmitsOneTurnedAwayRecord) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);

  obs::FlightRecorder recorder(16);
  BatchTelemetry telemetry;
  telemetry.flight_recorder = &recorder;
  const auto refused = engine.TrySearch(fx.queries, 0, SongSearchOptions{},
                                        telemetry);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(records[0].rejected, 1u);
}

TEST(SingleQueryLifecycle, ObserverEmitsRecordAndNullObserverIsIdentical) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 48;
  SongWorkspace ws;

  const std::vector<Neighbor> plain =
      searcher.Search(fx.queries.Row(0), 10, options, &ws);
  const auto unobserved =
      searcher.TrySearch(fx.queries.Row(0), 10, options, &ws);
  ASSERT_TRUE(unobserved.ok());
  EXPECT_TRUE(SameNeighbors(plain, *unobserved));

  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(8);
  const obs::RequestMetrics metrics(&registry);
  obs::RequestObserver observer;
  observer.metrics = &metrics;
  observer.recorder = &recorder;
  observer.request_id = 321;
  observer.queue_us = 7.5f;
  observer.batch_form_us = 1.5f;
  const auto observed = searcher.TrySearch(fx.queries.Row(0), 10, options,
                                           &ws, nullptr, nullptr, nullptr,
                                           &observer);
  ASSERT_TRUE(observed.ok());
  EXPECT_TRUE(SameNeighbors(plain, *observed));

  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].request_id, 321u);
  EXPECT_EQ(records[0].snapshot_version, 0u);  // frozen index
  EXPECT_FLOAT_EQ(records[0].queue_us, 7.5f);
  EXPECT_FLOAT_EQ(records[0].batch_form_us, 1.5f);
  EXPECT_EQ(records[0].code(), StatusCode::kOk);
  EXPECT_EQ(registry.GetHistogram("song.req.search_us").Count(), 1u);

  // A validation rejection still emits a record, with search_us = 0.
  std::vector<float> bad(fx.data.dim(), 1.0f);
  bad[0] = std::numeric_limits<float>::infinity();
  observer.request_id = 322;
  const auto rejected = searcher.TrySearch(bad.data(), 10, options, &ws,
                                           nullptr, nullptr, nullptr,
                                           &observer);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  const std::vector<obs::RequestRecord> after = recorder.Snapshot();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].request_id, 322u);
  EXPECT_EQ(after[1].rejected, 1u);
  EXPECT_FLOAT_EQ(after[1].search_us, 0.0f);
}

TEST(SingleQueryLifecycle, SnapshotVersionIsStampedIntoRecords) {
  constexpr size_t kDim = 8;
  MutableIndex index(Metric::kL2, kDim);
  std::mt19937 rng(2026);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> point(kDim);
  for (size_t i = 0; i < 80; ++i) {
    for (float& v : point) v = dist(rng);
    ASSERT_TRUE(index.Insert(point.data()).ok());
  }
  ASSERT_TRUE(index.Delete(3).ok());

  const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
  ASSERT_GT(snapshot->version(), 0u);

  obs::FlightRecorder recorder(8);
  obs::RequestObserver observer;
  observer.recorder = &recorder;
  observer.request_id = 77;

  std::vector<float> query(kDim);
  for (float& v : query) v = dist(rng);
  SongWorkspace ws;
  SongSearchOptions options;
  options.queue_size = 32;
  const auto result = snapshot->TrySearch(query.data(), 5, options, &ws,
                                          nullptr, nullptr, &observer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].request_id, 77u);
  EXPECT_EQ(records[0].snapshot_version, snapshot->version());
  EXPECT_EQ(records[0].code(), StatusCode::kOk);
}

TEST(BudgetTermination, CostBudgetIsStampedIntoTraceAndExport) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.cost_budget = 1;  // deterministic: always terminates the loop
  SongWorkspace ws;
  bool degraded = false;
  obs::SearchTrace trace;
  searcher.Search(fx.queries.Row(0), 10, options, &ws, nullptr, &trace,
                  &degraded);
  EXPECT_TRUE(degraded);
  EXPECT_EQ(trace.termination, obs::TraceTermination::kCostBudget);

  const std::string json = obs::TracesToJson({trace});
  EXPECT_NE(json.find("\"termination\": \"cost_budget\""), std::string::npos)
      << json;
}

TEST(BudgetTermination, DeadlineTerminationIsConsistentWithDegraded) {
  const LifecycleFixture& fx = LifecycleFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 4096;  // enough work that 1us cannot finish it
  options.deadline_us = 1;
  SongWorkspace ws;
  bool degraded = false;
  obs::SearchTrace trace;
  searcher.Search(fx.queries.Row(0), 10, options, &ws, nullptr, &trace,
                  &degraded);
  // A fast machine may finish an iteration before the first deadline
  // check; the trace termination must agree with the degraded flag.
  if (degraded) {
    EXPECT_EQ(trace.termination, obs::TraceTermination::kDeadline);
  } else {
    EXPECT_EQ(trace.termination, obs::TraceTermination::kConverged);
  }

  // A converged search never carries a budget termination.
  SongSearchOptions unbudgeted;
  unbudgeted.queue_size = 48;
  obs::SearchTrace converged;
  bool degraded2 = false;
  searcher.Search(fx.queries.Row(0), 10, unbudgeted, &ws, nullptr,
                  &converged, &degraded2);
  EXPECT_FALSE(degraded2);
  EXPECT_EQ(converged.termination, obs::TraceTermination::kConverged);
}

}  // namespace
}  // namespace song
