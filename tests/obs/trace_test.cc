// Unit tests for per-query search traces: deterministic sampling, collector
// cap semantics, and agreement between a trace's per-iteration rows and the
// search's aggregate counters.

#include "obs/trace.h"

#include <cstdint>
#include <vector>

#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "song/song_searcher.h"

namespace song {
namespace {

TEST(TraceSampler, PeriodZeroNeverSamples) {
  const obs::TraceSampler sampler(0, 123);
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_FALSE(sampler.ShouldSample(id));
  }
}

TEST(TraceSampler, PeriodOneAlwaysSamples) {
  const obs::TraceSampler sampler(1, 123);
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_TRUE(sampler.ShouldSample(id));
  }
}

// The sampler must be a pure function of (seed, period, id): two instances
// with the same parameters agree on every decision, so repeated runs trace
// the same queries regardless of thread scheduling.
TEST(TraceSampler, DeterministicAcrossInstances) {
  const obs::TraceSampler a(100, 0x534f4e47);
  const obs::TraceSampler b(100, 0x534f4e47);
  const obs::TraceSampler other_seed(100, 0xdeadbeef);
  size_t agree_other = 0;
  for (uint64_t id = 0; id < 100000; ++id) {
    ASSERT_EQ(a.ShouldSample(id), b.ShouldSample(id)) << id;
    if (a.ShouldSample(id) == other_seed.ShouldSample(id)) ++agree_other;
  }
  // A different seed picks a different (but equally sized) sample; if the
  // seeds agreed on every decision the seed would be dead configuration.
  EXPECT_LT(agree_other, 100000u);
}

TEST(TraceSampler, SampleRateNearOneInM) {
  const uint32_t period = 100;
  const uint64_t n = 100000;
  const obs::TraceSampler sampler(period, 0x534f4e47);
  size_t sampled = 0;
  for (uint64_t id = 0; id < n; ++id) {
    if (sampler.ShouldSample(id)) ++sampled;
  }
  // Binomial(100000, 1/100): mean 1000, sigma ~31.5; +/- 6 sigma.
  EXPECT_GT(sampled, 800u);
  EXPECT_LT(sampled, 1200u);
}

TEST(TraceCollector, CapsAndCountsDropped) {
  obs::TraceCollector collector(/*max_traces=*/2);
  for (uint64_t id = 0; id < 5; ++id) {
    obs::SearchTrace t;
    t.query_id = id;
    collector.Add(std::move(t));
  }
  EXPECT_EQ(collector.dropped(), 3u);
  const auto traces = collector.Take();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].query_id, 0u);
  EXPECT_EQ(traces[1].query_id, 1u);
}

// A traced search's per-iteration deltas must telescope to exactly the
// aggregate SearchStats the same search reports: every counted unit of work
// appears in exactly one row.
TEST(SearchTrace, RowsTelescopeToSearchStats) {
  SyntheticSpec spec;
  spec.name = "trace-test";
  spec.dim = 16;
  spec.num_points = 1200;
  spec.num_queries = 8;
  spec.num_clusters = 6;
  spec.seed = 99;
  const SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.degree = 12;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph = NswBuilder::Build(gen.points, Metric::kL2,
                                                   nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongWorkspace ws;

  for (const SongSearchOptions& options :
       {SongSearchOptions::HashTable(), SongSearchOptions::HashTableSelDel(),
        SongSearchOptions::Bloom()}) {
    for (size_t q = 0; q < gen.queries.num(); ++q) {
      SearchStats stats;
      obs::SearchTrace trace;
      searcher.Search(gen.queries.Row(static_cast<idx_t>(q)), 10, options,
                      &ws, &stats, &trace);

      // Row 0 is entry init; rows 1..n are the loop iterations.
      ASSERT_EQ(trace.Hops(), stats.iterations);
      EXPECT_EQ(trace.k, 10u);
      EXPECT_EQ(trace.config, options.Name());

      size_t rows_loaded = 0, q_pops = 0, tests = 0, dist_comps = 0;
      size_t heap_pushes = 0, topk_ops = 0, inserts = 0, deletes = 0;
      for (const obs::TraceIterationRow& row : trace.rows) {
        rows_loaded += row.rows_loaded;
        q_pops += row.q_pops;
        tests += row.visited_tests;
        dist_comps += row.dist_comps;
        heap_pushes += row.heap_pushes;
        topk_ops += row.topk_ops;
        inserts += row.visited_inserts;
        deletes += row.visited_deletes;
      }
      EXPECT_EQ(rows_loaded, stats.graph_rows_loaded);
      EXPECT_EQ(q_pops, stats.q_pops);
      EXPECT_EQ(tests, stats.visited_tests);
      EXPECT_EQ(dist_comps, stats.distance_computations);
      EXPECT_EQ(heap_pushes, stats.q_pushes + stats.q_evictions);
      EXPECT_EQ(topk_ops, stats.topk_pushes + stats.topk_evictions);
      EXPECT_EQ(inserts, stats.visited_insertions);
      EXPECT_EQ(deletes, stats.visited_deletions);
      EXPECT_EQ(trace.DistanceComputations(), stats.distance_computations);
    }
  }
}

}  // namespace
}  // namespace song
