// Flight-recorder tests: seqlock ring round-trip, wraparound retention,
// capacity rounding, concurrent writers racing a dumping reader (run under
// TSan by the thread-sanitizer CI leg via --gtest_filter='...FlightRecorder*'),
// JSON shape, and the allocation-free guarantee of the Record hot path —
// pinned by replacing the global operator new with a counting shim.

#include "obs/flight_recorder.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "gtest/gtest.h"
#include "obs/request_timeline.h"

// ---------------------------------------------------------------------------
// Global operator new/delete replacement. All variants route to malloc/free
// and bump a thread-local counter, so a test can assert that a code region
// performed zero allocations on *its* thread without seeing noise from
// concurrent test infrastructure. Replacing these is binary-wide; routing
// through malloc keeps every other test (and the sanitizer interceptors)
// behaving exactly as before.
// ---------------------------------------------------------------------------

namespace {
thread_local std::int64_t g_thread_allocs = 0;

void* CountedAlloc(std::size_t size) {
  ++g_thread_allocs;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++g_thread_allocs;
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_thread_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_thread_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace song::obs {
namespace {

RequestRecord MakeRecord(uint64_t request_id) {
  RequestTimeline tl;
  tl.enqueue_us = 0.0;
  tl.admitted_us = 1.5;
  tl.batched_us = 2.0;
  tl.search_begin_us = 2.25;
  tl.complete_us = 10.0;
  RequestRecord r = RequestRecord::Make(request_id, 0xabcdef1234ull, tl,
                                        StatusCode::kOk, /*degraded=*/false,
                                        /*rejected=*/false,
                                        /*snapshot_version=*/7);
  r.shards_answered = 3;
  r.shards_total = 4;
  return r;
}

TEST(FlightRecorder, SingleRecordRoundTrip) {
  FlightRecorder recorder(8);
  recorder.Record(MakeRecord(42));
  EXPECT_EQ(recorder.total_recorded(), 1u);

  const std::vector<RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const RequestRecord& r = records[0];
  EXPECT_EQ(r.request_id, 42u);
  EXPECT_EQ(r.options_digest, 0xabcdef1234ull);
  EXPECT_EQ(r.snapshot_version, 7u);
  EXPECT_FLOAT_EQ(r.queue_us, 1.5f);
  EXPECT_FLOAT_EQ(r.batch_form_us, 0.75f);
  EXPECT_FLOAT_EQ(r.search_us, 7.75f);
  EXPECT_FLOAT_EQ(r.total_us, r.queue_us + r.batch_form_us + r.search_us);
  EXPECT_EQ(r.code(), StatusCode::kOk);
  EXPECT_EQ(r.shards_answered, 3u);
  EXPECT_EQ(r.shards_total, 4u);
  EXPECT_EQ(r.degraded, 0u);
  EXPECT_EQ(r.rejected, 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(200).capacity(), 256u);
}

TEST(FlightRecorder, WraparoundRetainsNewestRecords) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.capacity(), 8u);
  constexpr uint64_t kTotal = 20;
  for (uint64_t i = 0; i < kTotal; ++i) recorder.Record(MakeRecord(i));
  EXPECT_EQ(recorder.total_recorded(), kTotal);

  const std::vector<RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), recorder.capacity());
  // Oldest -> newest, and exactly the last `capacity` request ids survive.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].request_id,
              kTotal - recorder.capacity() + i)
        << "slot " << i;
  }
}

TEST(FlightRecorder, ToJsonCarriesSchemaCapacityAndStatusNames) {
  FlightRecorder recorder(4);
  recorder.Record(MakeRecord(1));
  RequestTimeline tl;
  RequestRecord bad = RequestRecord::Make(2, 0x1, tl,
                                          StatusCode::kInvalidArgument,
                                          /*degraded=*/false,
                                          /*rejected=*/true);
  recorder.Record(bad);

  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_recorded\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"invalid_argument\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rejected\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"options_digest\": \"0x"), std::string::npos) << json;
}

// Every field of a concurrent writer's record is derived from its request
// id, so a reader can detect a torn record (mixed words from two writes) no
// matter which writers' payloads got interleaved.
RequestRecord DerivedRecord(uint64_t request_id) {
  RequestTimeline tl;
  tl.admitted_us = static_cast<double>(request_id % 997);
  tl.search_begin_us = tl.admitted_us;  // batch_form = 0
  tl.complete_us = tl.admitted_us + static_cast<double>(request_id % 89);
  return RequestRecord::Make(request_id, request_id * 2654435761ull, tl,
                             StatusCode::kOk, /*degraded=*/false,
                             /*rejected=*/false,
                             /*snapshot_version=*/request_id ^ 0x5a5a5a5aull);
}

void ExpectSelfConsistent(const RequestRecord& r) {
  const uint64_t id = r.request_id;
  ASSERT_EQ(r.options_digest, id * 2654435761ull) << "torn record, id " << id;
  ASSERT_EQ(r.snapshot_version, id ^ 0x5a5a5a5aull) << "torn record";
  ASSERT_FLOAT_EQ(r.queue_us, static_cast<float>(id % 997)) << "torn record";
  ASSERT_FLOAT_EQ(r.search_us, static_cast<float>(id % 89)) << "torn record";
}

TEST(FlightRecorderConcurrency, WritersRaceDumpWithoutTornReads) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 4000;
  FlightRecorder recorder(64);

  std::atomic<bool> stop{false};
  std::atomic<size_t> snapshots_taken{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<RequestRecord> records = recorder.Snapshot();
      EXPECT_LE(records.size(), recorder.capacity());
      for (const RequestRecord& r : records) ExpectSelfConsistent(r);
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(DerivedRecord(w * kPerWriter + i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  // Quiescent ring: a full, uncontended snapshot of self-consistent records.
  const std::vector<RequestRecord> records = recorder.Snapshot();
  EXPECT_EQ(records.size(), recorder.capacity());
  for (const RequestRecord& r : records) ExpectSelfConsistent(r);
}

TEST(FlightRecorderConcurrency, ToJsonUnderConcurrentWritesStaysWellFormed) {
  FlightRecorder recorder(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      recorder.Record(DerivedRecord(i++));
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = recorder.ToJson();
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(FlightRecorderAllocation, RecordHotPathAllocatesNothing) {
  FlightRecorder recorder(128);
  RequestRecord rec = MakeRecord(0);
  recorder.Record(rec);  // warm the path before counting

  const std::int64_t before = g_thread_allocs;
  for (uint64_t i = 0; i < 10000; ++i) {
    rec.request_id = i;
    recorder.Record(rec);
  }
  EXPECT_EQ(g_thread_allocs, before)
      << "FlightRecorder::Record allocated on the hot path";

  // The counting shim itself must be live, or the assertion above proves
  // nothing: snapshotting (vector growth) has to allocate.
  const std::int64_t snap_before = g_thread_allocs;
  const std::vector<RequestRecord> records = recorder.Snapshot();
  EXPECT_EQ(records.size(), recorder.capacity());
  EXPECT_GT(g_thread_allocs, snap_before)
      << "operator-new counter not engaged; allocation pin is vacuous";
}

}  // namespace
}  // namespace song::obs
