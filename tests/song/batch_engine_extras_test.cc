// Tests for batch-engine latency accounting and the hashed-batch simulator
// wrapper.

#include "data/synthetic.h"
#include "gpusim/simulator.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "hashing/hashed_index.h"
#include "song/batch_engine.h"

namespace song {
namespace {

struct EngineFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;

  static const EngineFixture& Get() {
    static EngineFixture* f = [] {
      auto* fx = new EngineFixture();
      SyntheticSpec spec;
      spec.dim = 16;
      spec.num_points = 1500;
      spec.num_queries = 40;
      spec.num_clusters = 6;
      spec.seed = 61;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      return fx;
    }();
    return *f;
  }
};

TEST(BatchEngineLatency, RecordsPerQueryLatencies) {
  const EngineFixture& fx = EngineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 2);
  const BatchResult batch = engine.Search(fx.queries, 10, {});
  ASSERT_EQ(batch.latencies_us.size(), fx.queries.num());
  for (const float lat : batch.latencies_us) EXPECT_GT(lat, 0.0f);
}

TEST(BatchEngineLatency, PercentilesAreMonotone) {
  const EngineFixture& fx = EngineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 2);
  const BatchResult batch = engine.Search(fx.queries, 10, {});
  const double p50 = batch.LatencyPercentileUs(50);
  const double p90 = batch.LatencyPercentileUs(90);
  const double p99 = batch.LatencyPercentileUs(99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_DOUBLE_EQ(batch.LatencyPercentileUs(0),
                   *std::min_element(batch.latencies_us.begin(),
                                     batch.latencies_us.end()));
  EXPECT_DOUBLE_EQ(batch.LatencyPercentileUs(100),
                   *std::max_element(batch.latencies_us.begin(),
                                     batch.latencies_us.end()));
}

TEST(BatchEngineLatency, EmptyBatchPercentileIsZero) {
  BatchResult empty;
  EXPECT_DOUBLE_EQ(empty.LatencyPercentileUs(50), 0.0);
}

TEST(SimulateHashedBatch, ProducesResultsAndGpuProfile) {
  const EngineFixture& fx = EngineFixture::Get();
  RandomProjection proj(fx.data.dim(), 64, ProjectionKind::kNormal, 5);
  const BinaryCodes codes = proj.EncodeDataset(fx.data, 1);
  HashedSongIndex index(&codes, &fx.graph, &proj);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 48;
  const SimulatedRun run =
      SimulateHashedBatch(index, fx.queries, 5, options, GpuSpec::TitanX(),
                          1);
  EXPECT_EQ(run.batch.results.size(), fx.queries.num());
  EXPECT_GT(run.SimQps(), 0.0);
  EXPECT_GT(run.gpu.kernel_seconds, 0.0);
  // Hashed bytes per candidate: 64 bits = 8 bytes.
  EXPECT_EQ(run.batch.stats.data_bytes_loaded,
            run.batch.stats.distance_computations * 8);
}

TEST(SimulateBatch, DenseVsHashedGpuCostOrdering) {
  // Hashed candidates stream 8 bytes rather than dim*4, so the PER-CANDIDATE
  // distance price must drop (total stage time can still grow because
  // Hamming plateaus make the search explore more candidates).
  const EngineFixture& fx = EngineFixture::Get();
  SongSearcher dense(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 64;
  const SimulatedRun dense_run =
      SimulateBatch(dense, fx.queries, 5, options, GpuSpec::TitanX(), 1);

  RandomProjection proj(fx.data.dim(), 64, ProjectionKind::kNormal, 5);
  const BinaryCodes codes = proj.EncodeDataset(fx.data, 1);
  HashedSongIndex hashed(&codes, &fx.graph, &proj);
  const SimulatedRun hashed_run =
      SimulateHashedBatch(hashed, fx.queries, 5, options, GpuSpec::TitanX(),
                          1);
  const double dense_per_cand =
      dense_run.gpu.distance_seconds /
      static_cast<double>(dense_run.batch.stats.distance_computations);
  const double hashed_per_cand =
      hashed_run.gpu.distance_seconds /
      static_cast<double>(hashed_run.batch.stats.distance_computations);
  EXPECT_LT(hashed_per_cand, dense_per_cand);
}

}  // namespace
}  // namespace song
