// Deadline / cost-budget degradation tests: budgets off must be a strict
// no-op (bit-identical results), deterministic cost budgets must degrade
// gracefully (valid best-so-far top-k, degraded flag, stats counter), and
// the batch layer must surface per-query degradation plus the
// song.search.degraded metric.

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "song/batch_engine.h"
#include "song/song_searcher.h"

namespace song {
namespace {

struct DeadlineFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;

  static const DeadlineFixture& Get() {
    static DeadlineFixture* f = [] {
      auto* fx = new DeadlineFixture();
      SyntheticSpec spec;
      spec.name = "deadline";
      spec.dim = 24;
      spec.num_points = 3000;
      spec.num_queries = 20;
      spec.num_clusters = 8;
      spec.seed = 4242;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 12;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      return fx;
    }();
    return *f;
  }
};

bool SameResults(const std::vector<Neighbor>& a,
                 const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].dist != b[i].dist) return false;
  }
  return true;
}

TEST(DeadlineBudget, DisabledBudgetsAreBitIdentical) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions plain;
  plain.queue_size = 64;
  SongSearchOptions zeroed = plain;
  zeroed.deadline_us = 0;
  zeroed.cost_budget = 0;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    bool degraded = true;
    SongWorkspace ws;
    const auto base =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, plain,
                        &ws, nullptr, nullptr, &degraded);
    const auto budgeted = searcher.Search(
        fx.queries.Row(static_cast<idx_t>(q)), 10, zeroed, &ws);
    EXPECT_TRUE(SameResults(base, budgeted)) << "query " << q;
    EXPECT_FALSE(degraded) << "query " << q;  // no budget -> never degraded
  }
}

TEST(DeadlineBudget, GenerousBudgetsDoNotChangeResults) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions plain;
  plain.queue_size = 64;
  SongSearchOptions generous = plain;
  generous.cost_budget = 1ull << 40;  // effectively unlimited, but checked
  SearchStats stats;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    bool degraded = true;
    SongWorkspace ws;
    const auto base =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, plain, &ws);
    const auto budgeted =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, generous,
                        &ws, &stats, nullptr, &degraded);
    EXPECT_TRUE(SameResults(base, budgeted)) << "query " << q;
    EXPECT_FALSE(degraded) << "query " << q;
  }
  EXPECT_EQ(stats.budget_terminations, 0u);
}

TEST(DeadlineBudget, TinyCostBudgetDegradesButStaysValid) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.cost_budget = 1;  // one distance computation, then stop
  SearchStats stats;
  size_t degraded_count = 0;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    bool degraded = false;
    SongWorkspace ws;
    const auto result =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, options,
                        &ws, &stats, nullptr, &degraded);
    if (degraded) ++degraded_count;
    // Best-so-far results are still well-formed: sorted, ids in range.
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_LT(result[i].id, fx.data.num());
      if (i > 0) EXPECT_LE(result[i - 1].dist, result[i].dist);
    }
    EXPECT_LE(result.size(), 10u);
  }
  // A 3000-point graph cannot converge in one distance computation.
  EXPECT_EQ(degraded_count, fx.queries.num());
  EXPECT_EQ(stats.budget_terminations, fx.queries.num());
}

TEST(DeadlineBudget, CostBudgetIsDeterministic) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.cost_budget = 200;
  for (size_t q = 0; q < 5; ++q) {
    SongWorkspace ws;
    bool degraded_a = false, degraded_b = false;
    const auto a = searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10,
                                   options, &ws, nullptr, nullptr,
                                   &degraded_a);
    const auto b = searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10,
                                   options, &ws, nullptr, nullptr,
                                   &degraded_b);
    EXPECT_TRUE(SameResults(a, b)) << "query " << q;
    EXPECT_EQ(degraded_a, degraded_b) << "query " << q;
  }
}

TEST(DeadlineBudget, WallClockDeadlineTerminates) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 4096;  // make the un-budgeted search do real work
  options.deadline_us = 1;    // expires essentially immediately
  SongWorkspace ws;
  bool degraded = false;
  SearchStats stats;
  const auto result = searcher.Search(fx.queries.Row(0), 10, options, &ws,
                                      &stats, nullptr, &degraded);
  // The first iteration may finish under 1us on a fast machine, but the
  // search must terminate promptly and report consistently either way.
  EXPECT_EQ(degraded, stats.budget_terminations == 1);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

TEST(DeadlineBudget, BatchSurfacesDegradedQueriesAndMetric) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.cost_budget = 1;
  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  StatusOr<BatchResult> batch =
      engine.TrySearch(fx.queries, 10, options, telemetry);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->queries_degraded, fx.queries.num());
  ASSERT_EQ(batch->degraded.size(), fx.queries.num());
  for (const uint8_t d : batch->degraded) EXPECT_EQ(d, 1);
  EXPECT_EQ(batch->stats.budget_terminations, fx.queries.num());
  EXPECT_EQ(registry.GetCounter("song.search.degraded").Value(),
            fx.queries.num());
}

TEST(DeadlineBudget, BatchWithoutBudgetsReportsNoDegradation) {
  const DeadlineFixture& fx = DeadlineFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 2);
  SongSearchOptions options;
  options.queue_size = 64;
  const BatchResult batch = engine.Search(fx.queries, 10, options);
  EXPECT_EQ(batch.queries_degraded, 0u);
  EXPECT_EQ(batch.queries_rejected, 0u);
  EXPECT_EQ(batch.stats.budget_terminations, 0u);
}

}  // namespace
}  // namespace song
