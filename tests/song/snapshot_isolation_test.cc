// Snapshot isolation contract of the online index (ROADMAP open item 2):
// a reader that pins version N sees bit-identical results forever, while a
// writer concurrently publishes N+1, N+2, ...; a retired version is never
// freed while a reader pins it (exercised by actually reading through the
// pin, so ASan catches a premature free); with zero mutations the snapshot
// layer is a strict no-op over a plain SongSearcher — element-for-element,
// bit-for-bit. Also pins the MutableIndex Status error codes and the
// song.index.* metrics wiring.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/random.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "song/index_snapshot.h"
#include "song/mutable_index.h"
#include "song/song_searcher.h"

namespace song {
namespace {

std::vector<float> RandomPoint(RandomEngine& rng, size_t dim) {
  std::vector<float> v(dim);
  for (size_t d = 0; d < dim; ++d) {
    v[d] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  if (v[0] == 0.0f) v[0] = 0.5f;
  return v;
}

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

TEST(SnapshotIsolation, FrozenAdoptionIsStrictNoOpOverSongSearcher) {
  SyntheticSpec spec;
  spec.name = "frozen";
  spec.dim = 12;
  spec.num_points = 600;
  spec.num_queries = 25;
  spec.num_clusters = 6;
  spec.seed = 1234;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.degree = 12;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);

  MutableIndex index(Metric::kL2, spec.dim);
  ASSERT_TRUE(index
                  .AdoptFrozen(gen.points.CopyGrown(gen.points.num()),
                               graph.CopyGrown(graph.num_vertices()))
                  .ok());
  const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
  ASSERT_EQ(snapshot->tombstone_count(), 0u);
  EXPECT_EQ(snapshot->CompensatedK(7), 7u);

  const SongSearcher plain(&gen.points, &graph, Metric::kL2);
  SongWorkspace ws_a;
  SongWorkspace ws_b;
  const SongSearchOptions presets[] = {
      SongSearchOptions{}, SongSearchOptions::HashTableSelDel(),
      SongSearchOptions::CpuEngineered()};
  for (const SongSearchOptions& options : presets) {
    for (size_t q = 0; q < gen.queries.num(); ++q) {
      const float* query = gen.queries.Row(static_cast<idx_t>(q));
      const std::vector<Neighbor> via_snapshot =
          snapshot->Search(query, 10, options, &ws_a);
      const std::vector<Neighbor> via_searcher =
          plain.Search(query, 10, options, &ws_b);
      ASSERT_TRUE(SameNeighbors(via_snapshot, via_searcher))
          << "frozen snapshot diverged from plain searcher at query " << q;
    }
  }
}

TEST(SnapshotIsolation, PinnedVersionIsImmutableAcrossWriterPublishes) {
  constexpr size_t kDim = 8;
  MutableIndex index(Metric::kL2, kDim);
  RandomEngine rng(2026);
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }

  const std::shared_ptr<const IndexSnapshot> pinned = index.Acquire();
  const uint64_t pinned_version = pinned->version();
  SongWorkspace ws;
  SongSearchOptions options;
  options.queue_size = 32;
  std::vector<std::vector<float>> queries;
  std::vector<std::vector<Neighbor>> before;
  for (size_t q = 0; q < 10; ++q) {
    queries.push_back(RandomPoint(rng, kDim));
    before.push_back(pinned->Search(queries.back().data(), 5, options, &ws));
    ASSERT_FALSE(before.back().empty());
  }

  // Writer keeps publishing: inserts, deletes (including of ids the pinned
  // readers are currently returning), more inserts.
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }
  for (idx_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  ASSERT_GT(index.version(), pinned_version);

  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Neighbor> after =
        pinned->Search(queries[q].data(), 5, options, &ws);
    EXPECT_TRUE(SameNeighbors(before[q], after))
        << "pinned snapshot result drifted at query " << q;
    // The pinned view still considers every returned id live even though
    // the current version tombstoned ids [0, 32).
    for (const Neighbor& n : after) EXPECT_TRUE(pinned->IsLive(n.id));
  }
  const std::shared_ptr<const IndexSnapshot> current = index.Acquire();
  for (idx_t id = 0; id < 32; ++id) EXPECT_FALSE(current->IsLive(id));
}

TEST(SnapshotIsolation, RetiredVersionSurvivesWhilePinnedAndFreesAfter) {
  constexpr size_t kDim = 6;
  MutableIndex index(Metric::kL2, kDim);
  RandomEngine rng(31337);
  for (size_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }

  std::shared_ptr<const IndexSnapshot> pinned = index.Acquire();
  const uint64_t pinned_version = pinned->version();
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
    // Publish sweeps opportunistically, yet the pinned version must survive
    // every sweep...
    ASSERT_GE(index.retired_versions(), 1u);
  }
  // The first explicit sweep may free the final insert's predecessor (the
  // mutator's own stack reference kept it alive through its Publish sweep),
  // but repeated sweeps must never free the pinned version.
  index.ReclaimRetired();
  ASSERT_GE(index.retired_versions(), 1u);
  ASSERT_EQ(index.ReclaimRetired(), 0u)
      << "explicit sweep reclaimed a pinned snapshot";

  // ...and stay fully readable: touch its payload under ASan.
  SongWorkspace ws;
  SongSearchOptions options;
  EXPECT_EQ(pinned->version(), pinned_version);
  EXPECT_EQ(pinned->num_points(), 24u);
  const std::vector<float> q = RandomPoint(rng, kDim);
  const std::vector<Neighbor> got = pinned->Search(q.data(), 3, options, &ws);
  ASSERT_FALSE(got.empty());
  for (const Neighbor& n : got) {
    EXPECT_TRUE(std::isfinite(pinned->data().Row(n.id)[0]));
  }

  pinned.reset();
  EXPECT_GT(index.ReclaimRetired(), 0u);
  EXPECT_EQ(index.retired_versions(), 0u);
}

TEST(SnapshotIsolation, StatusCodesOnInvalidMutations) {
  constexpr size_t kDim = 4;
  MutableIndex index(Metric::kL2, kDim);
  RandomEngine rng(5);

  EXPECT_EQ(index.Insert(nullptr).status().code(),
            StatusCode::kInvalidArgument);
  float bad[kDim] = {1.0f, std::numeric_limits<float>::quiet_NaN(), 0.0f,
                     0.0f};
  EXPECT_EQ(index.Insert(bad).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Delete(0).code(), StatusCode::kOutOfRange);

  const StatusOr<idx_t> id = index.Insert(RandomPoint(rng, kDim).data());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0u);
  EXPECT_TRUE(index.Delete(id.value()).ok());
  EXPECT_EQ(index.Delete(id.value()).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.Delete(99).code(), StatusCode::kOutOfRange);

  // AdoptFrozen is only legal while the index is empty.
  Dataset data(2, kDim);
  const float row[kDim] = {1, 2, 3, 4};
  data.SetRow(0, row);
  data.SetRow(1, row);
  FixedDegreeGraph graph(2, 4);
  graph.AddNeighbor(0, 1);
  graph.AddNeighbor(1, 0);
  EXPECT_EQ(index.AdoptFrozen(std::move(data), std::move(graph)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotIsolation, MetricsTrackMutationsAndReclamation) {
  constexpr size_t kDim = 5;
  obs::MetricsRegistry registry;
  MutableIndex index(Metric::kL2, kDim, MutableIndexOptions{}, &registry);
  RandomEngine rng(99);

  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }
  ASSERT_TRUE(index.Delete(2).ok());
  ASSERT_TRUE(index.Delete(7).ok());
  index.ReclaimRetired();

  EXPECT_EQ(registry.GetCounter("song.index.inserts").Value(), 10u);
  EXPECT_EQ(registry.GetCounter("song.index.deletes").Value(), 2u);
  EXPECT_GT(registry.GetCounter("song.index.snapshots_reclaimed").Value(), 0u);
  EXPECT_EQ(registry.GetGauge("song.index.live_points").Value(), 8.0);
  EXPECT_EQ(registry.GetGauge("song.index.snapshot_versions").Value(),
            static_cast<double>(index.version()));
  EXPECT_EQ(registry.GetGauge("song.index.retired_snapshots").Value(), 0.0);
}

TEST(SnapshotIsolation, SearchCapsKAtLivePointsAndFiltersTombstones) {
  constexpr size_t kDim = 3;
  MutableIndex index(Metric::kL2, kDim);
  RandomEngine rng(7);
  for (size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }
  for (idx_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(index.Delete(id).ok());
  }

  const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();
  EXPECT_EQ(snapshot->live_points(), 6u);
  EXPECT_EQ(snapshot->tombstone_count(), 6u);
  EXPECT_EQ(snapshot->CompensatedK(4), 10u);
  EXPECT_EQ(snapshot->CompensatedK(100), 12u);  // capped at num_points

  SongWorkspace ws;
  SongSearchOptions options;
  options.queue_size = 64;  // ample: reach everything
  const std::vector<float> q = RandomPoint(rng, kDim);
  // Ask for more neighbors than live points: served, capped, and free of
  // tombstones.
  const std::vector<Neighbor> got = snapshot->Search(q.data(), 50, options, &ws);
  EXPECT_EQ(got.size(), 6u);
  for (const Neighbor& n : got) {
    EXPECT_TRUE(snapshot->IsLive(n.id));
    EXPECT_GE(n.id, 6u);
  }
}

TEST(SnapshotIsolation, QuantizedSearchIsRejectedWithFailedPrecondition) {
  // Snapshots never carry a PQ codebook (online inserts would race the
  // pinned encoder), so quantized traversal must be refused up front with a
  // clear Status — and the same snapshot must keep serving exact search.
  constexpr size_t kDim = 16;
  MutableIndex index(Metric::kL2, kDim);
  RandomEngine rng(31);
  for (size_t i = 0; i < 48; ++i) {
    ASSERT_TRUE(index.Insert(RandomPoint(rng, kDim).data()).ok());
  }
  const std::shared_ptr<const IndexSnapshot> snapshot = index.Acquire();

  SongWorkspace ws;
  SongSearchOptions options;
  options.queue_size = 32;
  options.quant = QuantizationMode::kPq;
  const std::vector<float> q = RandomPoint(rng, kDim);
  const auto rejected = snapshot->TrySearch(q.data(), 5, options, &ws);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  // The message should steer the caller toward the static-index path.
  EXPECT_NE(rejected.status().message().find("PQ"), std::string::npos);

  options.quant = QuantizationMode::kNone;
  const auto served = snapshot->TrySearch(q.data(), 5, options, &ws);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served.value().size(), 5u);
}

}  // namespace
}  // namespace song
