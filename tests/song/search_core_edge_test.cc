// Edge-case and failure-injection tests for the search pipeline: degenerate
// datasets (single point, all-identical points = maximal distance ties),
// tiny queues, k >= n, saturated visited structures, disconnected graphs,
// and probabilistic-structure misbehaviour under pressure.

#include <algorithm>
#include <set>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "song/song_searcher.h"

namespace song {
namespace {

Dataset MakePoints(const std::vector<std::vector<float>>& rows) {
  Dataset data(rows.size(), rows.empty() ? 1 : rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    data.SetRow(static_cast<idx_t>(i), rows[i].data());
  }
  return data;
}

TEST(SearchCoreEdge, SinglePointDataset) {
  Dataset data = MakePoints({{1.0f, 2.0f}});
  FixedDegreeGraph graph(1, 4);
  SongSearcher searcher(&data, &graph, Metric::kL2);
  const float query[2] = {0.0f, 0.0f};
  const auto result = searcher.Search(query, 5, {});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_FLOAT_EQ(result[0].dist, 5.0f);
}

TEST(SearchCoreEdge, TwoPointsLinked) {
  Dataset data = MakePoints({{0.0f}, {10.0f}});
  FixedDegreeGraph graph(2, 2);
  graph.SetNeighbors(0, {1});
  graph.SetNeighbors(1, {0});
  SongSearcher searcher(&data, &graph, Metric::kL2);
  const float query[1] = {9.0f};
  const auto result = searcher.Search(query, 2, {});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_EQ(result[1].id, 0u);
}

TEST(SearchCoreEdge, AllIdenticalPointsTerminates) {
  // Every distance ties: the strict-> termination and the never-erase-ties
  // rule must still terminate and return k distinct vertices.
  std::vector<std::vector<float>> rows(64, {3.0f, 3.0f, 3.0f});
  Dataset data = MakePoints(rows);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph = NswBuilder::Build(data, Metric::kL2, nsw);
  SongSearcher searcher(&data, &graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 16;
  const float query[3] = {0.0f, 0.0f, 0.0f};
  const auto result = searcher.Search(query, 10, options);
  ASSERT_LE(result.size(), 10u);
  std::set<idx_t> ids;
  for (const Neighbor& n : result) {
    EXPECT_FLOAT_EQ(n.dist, 27.0f);
    ids.insert(n.id);
  }
  EXPECT_EQ(ids.size(), result.size());
}

TEST(SearchCoreEdge, QueueSizeOneStillWorks) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 300;
  spec.num_queries = 5;
  spec.seed = 3;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 1;
  const auto result = searcher.Search(gen.queries.Row(0), 1, options);
  ASSERT_EQ(result.size(), 1u);  // ef clamps to k=1: pure greedy descent
}

TEST(SearchCoreEdge, KEqualsDatasetSizeReturnsEverythingReachable) {
  SyntheticSpec spec;
  spec.dim = 4;
  spec.num_points = 50;
  spec.num_queries = 1;
  spec.seed = 9;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 100;
  const auto result = searcher.Search(gen.queries.Row(0), 50, options);
  EXPECT_EQ(result.size(), 50u);
  std::set<idx_t> ids;
  for (const Neighbor& n : result) ids.insert(n.id);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(SearchCoreEdge, DisconnectedComponentIsInvisible) {
  // Vertices 4,5 form an island; the search can only return the connected
  // component of the entry.
  Dataset data = MakePoints({{0.f}, {1.f}, {2.f}, {3.f}, {100.f}, {101.f}});
  FixedDegreeGraph graph(6, 2);
  graph.SetNeighbors(0, {1});
  graph.SetNeighbors(1, {0, 2});
  graph.SetNeighbors(2, {1, 3});
  graph.SetNeighbors(3, {2});
  graph.SetNeighbors(4, {5});
  graph.SetNeighbors(5, {4});
  SongSearcher searcher(&data, &graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 16;
  const float query[1] = {100.0f};  // true NN is in the island
  const auto result = searcher.Search(query, 2, options);
  ASSERT_EQ(result.size(), 2u);
  for (const Neighbor& n : result) EXPECT_LT(n.id, 4u);
}

TEST(SearchCoreEdge, TinyHashCapacityDegradesGracefully) {
  // Forcing a far-too-small exact visited table must not crash or loop;
  // recall may suffer (saturation treats vertices as visited).
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 1000;
  spec.num_queries = 10;
  spec.seed = 21;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.hash_capacity = 8;  // absurd
  SearchStats stats;
  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const auto result =
        searcher.Search(gen.queries.Row(static_cast<idx_t>(q)), 5, options,
                        &stats);
    EXPECT_LE(result.size(), 5u);
  }
  EXPECT_GT(stats.visited_insert_failures, 0u);
}

TEST(SearchCoreEdge, TinyBloomFilterStillNoCrashLowRecall) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 1000;
  spec.num_queries = 10;
  spec.seed = 22;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::Bloom();
  options.queue_size = 64;
  options.bloom_bits = 64;  // saturates almost immediately
  const auto result = searcher.Search(gen.queries.Row(0), 5, options);
  // False positives prune the search; results may be short but valid.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

TEST(SearchCoreEdge, ZeroDegreeEntryReturnsJustEntry) {
  Dataset data = MakePoints({{0.f}, {1.f}, {2.f}});
  FixedDegreeGraph graph(3, 2);  // no edges at all
  SongSearcher searcher(&data, &graph, Metric::kL2);
  const float query[1] = {1.5f};
  const auto result = searcher.Search(query, 3, {});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

TEST(SearchCoreEdge, RepeatedSearchesReuseWorkspaceCleanly) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 500;
  spec.num_queries = 20;
  spec.seed = 23;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongWorkspace ws;
  // Alternate configurations through ONE workspace: stale state in the
  // reused heaps/tables would corrupt results.
  FlatIndex flat(&gen.points, Metric::kL2);
  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const float* query = gen.queries.Row(static_cast<idx_t>(q));
    SongSearchOptions options =
        (q % 2 == 0) ? SongSearchOptions::HashTableSelDel()
                     : SongSearchOptions::Cuckoo();
    options.queue_size = (q % 3 == 0) ? 32 : 96;
    const auto result = searcher.Search(query, 5, options, &ws);
    ASSERT_FALSE(result.empty());
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].dist, result[i].dist);
    }
    // Every reported distance must be genuine.
    for (const Neighbor& n : result) {
      EXPECT_FLOAT_EQ(n.dist,
                      L2Sqr(query, gen.points.Row(n.id), gen.points.dim()));
    }
  }
}

TEST(SearchCoreEdge, MultiStepLargerThanQueueIsSafe) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 400;
  spec.num_queries = 3;
  spec.seed = 24;
  SyntheticData gen = GenerateSynthetic(spec);
  NswBuildOptions nsw;
  nsw.num_threads = 1;
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, nsw);
  SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 8;
  options.multi_step_probe = 64;  // far larger than the queue
  const auto result = searcher.Search(gen.queries.Row(0), 5, options);
  EXPECT_FALSE(result.empty());
}

}  // namespace
}  // namespace song
