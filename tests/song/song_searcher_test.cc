// End-to-end correctness of the SONG 3-stage pipeline: agreement with the
// reference Algorithm-1 search, recall against exact ground truth, the
// semantics of the §IV-C/D/E optimizations, and multi-step probing.

#include "song/song_searcher.h"

#include <algorithm>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/graph_search.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"

namespace song {
namespace {

struct Fixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  std::vector<std::vector<idx_t>> ground_truth;

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      SyntheticSpec spec;
      spec.name = "test";
      spec.dim = 24;
      spec.num_points = 3000;
      spec.num_queries = 40;
      spec.num_clusters = 12;
      spec.cluster_std = 0.4;
      spec.seed = 77;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 16;
      nsw.num_threads = 1;  // deterministic graph
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->ground_truth =
          FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 1));
      return fx;
    }();
    return *f;
  }
};

double MeasureRecall(const SongSearchOptions& options, size_t k = 10) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongWorkspace ws;
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), k, options,
                        &ws);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  return MeanRecallAtK(results, fx.ground_truth, k);
}

TEST(SongSearcher, ReturnsSortedResults) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 32;
  const auto result = searcher.Search(fx.queries.Row(0), 10, options);
  ASSERT_LE(result.size(), 10u);
  ASSERT_GE(result.size(), 1u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

TEST(SongSearcher, NoDuplicateResults) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  for (size_t q = 0; q < 10; ++q) {
    const auto result =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, options);
    std::vector<idx_t> ids;
    for (const Neighbor& n : result) ids.push_back(n.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

TEST(SongSearcher, DistancesAreExact) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  const auto result = searcher.Search(fx.queries.Row(3), 5, options);
  for (const Neighbor& n : result) {
    const float expect =
        L2Sqr(fx.queries.Row(3), fx.data.Row(n.id), fx.data.dim());
    EXPECT_FLOAT_EQ(n.dist, expect);
  }
}

TEST(SongSearcher, MatchesReferenceGraphSearch) {
  // With the plain hash table and a single probe step, the bounded pipeline
  // explores the same frontier as the reference Algorithm 1 with ef =
  // queue_size, so the returned top-k should agree on distance.
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  VisitedBuffer visited;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const float* query = fx.queries.Row(static_cast<idx_t>(q));
    const auto song = searcher.Search(query, 10, options);
    const auto ref = GraphSearch(fx.data, Metric::kL2, fx.graph, 0, query,
                                 64, 10, &visited);
    ASSERT_EQ(song.size(), ref.size());
    for (size_t i = 0; i < song.size(); ++i) {
      EXPECT_FLOAT_EQ(song[i].dist, ref[i].dist) << "query " << q << " pos "
                                                 << i;
    }
  }
}

TEST(SongSearcher, HighRecallWithLargeQueue) {
  SongSearchOptions options;
  options.queue_size = 256;
  EXPECT_GE(MeasureRecall(options), 0.95);
}

TEST(SongSearcher, RecallGrowsWithQueueSize) {
  SongSearchOptions small;
  small.queue_size = 10;
  SongSearchOptions large;
  large.queue_size = 160;
  EXPECT_GE(MeasureRecall(large), MeasureRecall(small));
}

// ---- Optimization semantics across all Fig 7 configurations. ----

struct ConfigCase {
  const char* name;
  SongSearchOptions options;
};

class SearcherConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(SearcherConfigTest, ReachesGoodRecall) {
  SongSearchOptions options = GetParam().options;
  options.queue_size = 128;
  // Probabilistic structures may lose a little recall to false positives.
  EXPECT_GE(MeasureRecall(options), 0.9) << GetParam().name;
}

TEST_P(SearcherConfigTest, ResultsSortedAndUnique) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = GetParam().options;
  options.queue_size = 48;
  for (size_t q = 0; q < 8; ++q) {
    const auto result =
        searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, options);
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].dist, result[i].dist);
    }
  }
}

TEST_P(SearcherConfigTest, StatsAreConsistent) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = GetParam().options;
  options.queue_size = 64;
  SearchStats stats;
  searcher.Search(fx.queries.Row(0), 10, options, &stats);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_EQ(stats.graph_rows_loaded, stats.vertices_expanded);
  EXPECT_GE(stats.visited_tests,
            stats.vertices_expanded);  // >= one test per expanded row slot
  EXPECT_GT(stats.data_bytes_loaded, 0u);
  EXPECT_EQ(stats.graph_bytes_loaded,
            stats.graph_rows_loaded * fx.graph.degree() * sizeof(idx_t));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SearcherConfigTest,
    ::testing::Values(
        ConfigCase{"hashtable", SongSearchOptions::HashTable()},
        ConfigCase{"hashtable_sel", SongSearchOptions::HashTableSel()},
        ConfigCase{"hashtable_sel_del", SongSearchOptions::HashTableSelDel()},
        ConfigCase{"bloom", SongSearchOptions::Bloom()},
        ConfigCase{"cuckoo", SongSearchOptions::Cuckoo()}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.name;
    });

TEST(SongSearcherOptimizations, SelectedInsertionShrinksVisitedSet) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions plain = SongSearchOptions::HashTable();
  SongSearchOptions sel = SongSearchOptions::HashTableSel();
  plain.queue_size = sel.queue_size = 64;
  SearchStats plain_stats, sel_stats;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const float* query = fx.queries.Row(static_cast<idx_t>(q));
    searcher.Search(query, 10, plain, &plain_stats);
    searcher.Search(query, 10, sel, &sel_stats);
  }
  // §IV-D: fewer insertions, possibly more (recomputed) distances.
  EXPECT_LT(sel_stats.visited_insertions, plain_stats.visited_insertions);
  EXPECT_GE(sel_stats.distance_computations,
            plain_stats.distance_computations);
  EXPECT_GT(sel_stats.selected_insertion_skips, 0u);
}

TEST(SongSearcherOptimizations, VisitedDeletionBoundsLiveEntries) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 32;
  SearchStats stats;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, options,
                    &stats);
  }
  // §IV-E: visited = q ∪ topk, each bounded by queue_size.
  EXPECT_LE(stats.peak_visited_size, 2 * options.queue_size + 1);
  EXPECT_GT(stats.visited_deletions, 0u);
}

TEST(SongSearcherOptimizations, SelDelUsesLessVisitedMemoryThanPlain) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions plain = SongSearchOptions::HashTable();
  SongSearchOptions seldel = SongSearchOptions::HashTableSelDel();
  plain.queue_size = seldel.queue_size = 64;
  SearchStats plain_stats, seldel_stats;
  searcher.Search(fx.queries.Row(0), 10, plain, &plain_stats);
  searcher.Search(fx.queries.Row(0), 10, seldel, &seldel_stats);
  EXPECT_LT(seldel_stats.visited_capacity_bytes,
            plain_stats.visited_capacity_bytes);
}

TEST(SongSearcherOptimizations, BloomUsesConstantSmallMemory) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions bloom = SongSearchOptions::Bloom();
  bloom.queue_size = 256;
  SearchStats stats;
  searcher.Search(fx.queries.Row(0), 10, bloom, &stats);
  // Paper: ~300 u32 (1.2 KB); ours rounds to u64 words.
  EXPECT_LE(stats.visited_capacity_bytes, 2048u);
}

// ---- Multi-step probing / multi-query plumbing. ----

class MultiStepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MultiStepTest, StillReachesHighRecall) {
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 128;
  options.multi_step_probe = GetParam();
  EXPECT_GE(MeasureRecall(options), 0.9) << "probe=" << GetParam();
}

TEST_P(MultiStepTest, MoreStepsDoNotReduceWorkPerIteration) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 64;
  options.multi_step_probe = GetParam();
  SearchStats stats;
  searcher.Search(fx.queries.Row(0), 10, options, &stats);
  EXPECT_LE(stats.iterations, stats.vertices_expanded + 1);
}

INSTANTIATE_TEST_SUITE_P(ProbeWidths, MultiStepTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(SongSearcher, MultiStepReducesIterations) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions one;
  one.queue_size = 64;
  SongSearchOptions four = one;
  four.multi_step_probe = 4;
  SearchStats s1, s4;
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, one, &s1);
    searcher.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, four, &s4);
  }
  EXPECT_LT(s4.iterations, s1.iterations);
  // §V: extra probes waste distance computations on suboptimal candidates.
  EXPECT_GE(s4.distance_computations, s1.distance_computations);
}

TEST(SongSearcher, KLargerThanQueueSizeIsClamped) {
  const Fixture& fx = Fixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 4;  // < k
  const auto result = searcher.Search(fx.queries.Row(0), 20, options);
  EXPECT_LE(result.size(), 20u);
  EXPECT_GE(result.size(), 10u);  // ef clamped up to k=20
}

TEST(SongSearcher, EntryPointIsConfigurable) {
  const Fixture& fx = Fixture::Get();
  const idx_t entry = static_cast<idx_t>(fx.data.num() / 2);
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2, entry);
  SongSearchOptions options;
  options.queue_size = 96;
  const auto result = searcher.Search(fx.queries.Row(0), 10, options);
  EXPECT_FALSE(result.empty());
}

TEST(SongSearcher, WorksWithInnerProductMetric) {
  const Fixture& fx = Fixture::Get();
  NswBuildOptions nsw;
  nsw.degree = 16;
  nsw.num_threads = 1;
  const FixedDegreeGraph ip_graph =
      NswBuilder::Build(fx.data, Metric::kInnerProduct, nsw);
  SongSearcher searcher(&fx.data, &ip_graph, Metric::kInnerProduct);
  SongSearchOptions options;
  options.queue_size = 64;
  const auto result = searcher.Search(fx.queries.Row(0), 5, options);
  ASSERT_FALSE(result.empty());
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

}  // namespace
}  // namespace song
