// Recall-under-churn regression (ISSUE 6 satellite): after tombstoning 30%
// of a built index and reinserting replacements online, recall@10 against
// the exact oracle must stay within a fixed epsilon of the fresh-build
// recall on the same final point set. This is the guard against silent
// graph-quality decay in the online Insert path — a link policy that merely
// "doesn't crash" but routes poorly shows up here as a recall gap.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/random.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "harness/oracles.h"
#include "song/index_snapshot.h"
#include "song/mutable_index.h"

namespace song {
namespace {

constexpr size_t kDim = 16;
constexpr size_t kNumPoints = 1200;
constexpr size_t kNumQueries = 60;
constexpr size_t kK = 10;
// Fresh-build and churned recall both sit near 1.0 at this queue size on the
// clustered synthetic set; the bound leaves room for seed jitter while still
// failing on any systematic link-quality regression.
constexpr double kEpsilon = 0.06;

double RecallVsOracle(const IndexSnapshot& snapshot,
                      const harness::OracleDynamicIndex& oracle,
                      const Dataset& queries) {
  SongWorkspace ws;
  SongSearchOptions options = SongSearchOptions::CpuEngineered();
  options.queue_size = 128;
  size_t hits = 0;
  for (size_t q = 0; q < queries.num(); ++q) {
    const float* query = queries.Row(static_cast<idx_t>(q));
    const std::vector<Neighbor> truth = oracle.TopK(query, kK);
    const std::vector<Neighbor> got =
        snapshot.Search(query, kK, options, &ws);
    for (const Neighbor& n : got) {
      for (const Neighbor& t : truth) {
        if (n.id == t.id) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(queries.num() * kK);
}

TEST(MutableIndexChurn, RecallAfterDeleteReinsertStaysNearFreshBuild) {
  SyntheticSpec spec;
  spec.name = "churn";
  spec.dim = kDim;
  spec.num_points = kNumPoints;
  spec.num_queries = kNumQueries;
  spec.num_clusters = 10;
  spec.cluster_std = 0.4;
  spec.seed = 4242;
  SyntheticData gen = GenerateSynthetic(spec);

  // Churned index: adopt the frozen build, tombstone 30%, reinsert fresh
  // replacement points online.
  NswBuildOptions nsw;
  nsw.degree = 16;
  nsw.num_threads = 1;
  MutableIndex churned(Metric::kL2, kDim,
                       MutableIndexOptions{.degree = 16,
                                           .ef_construction = 128});
  ASSERT_TRUE(churned
                  .AdoptFrozen(gen.points.CopyGrown(gen.points.num()),
                               NswBuilder::Build(gen.points, Metric::kL2, nsw))
                  .ok());

  harness::OracleDynamicIndex oracle(Metric::kL2, kDim);
  for (size_t i = 0; i < kNumPoints; ++i) {
    oracle.Insert(gen.points.Row(static_cast<idx_t>(i)));
  }

  RandomEngine rng(777);
  const size_t num_churn = kNumPoints * 30 / 100;
  std::vector<idx_t> victims;
  {
    // Distinct random victims.
    std::vector<idx_t> ids(kNumPoints);
    for (size_t i = 0; i < kNumPoints; ++i) ids[i] = static_cast<idx_t>(i);
    for (size_t i = 0; i < num_churn; ++i) {
      const size_t j = i + rng.NextUint(kNumPoints - i);
      std::swap(ids[i], ids[j]);
      victims.push_back(ids[i]);
    }
  }
  for (const idx_t id : victims) {
    ASSERT_TRUE(churned.Delete(id).ok());
    ASSERT_TRUE(oracle.Delete(id));
  }
  std::vector<float> point(kDim);
  for (size_t i = 0; i < num_churn; ++i) {
    for (size_t d = 0; d < kDim; ++d) {
      point[d] = static_cast<float>(rng.NextGaussian());
    }
    const StatusOr<idx_t> id = churned.Insert(point.data());
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(id.value(), oracle.Insert(point.data()));
  }
  const std::shared_ptr<const IndexSnapshot> churned_snapshot =
      churned.Acquire();
  ASSERT_EQ(churned_snapshot->live_points(), kNumPoints);
  ASSERT_EQ(churned_snapshot->num_points(), kNumPoints + num_churn);

  // Fresh-build baseline over the identical final live set.
  Dataset final_points(kNumPoints, kDim);
  {
    idx_t row = 0;
    for (const idx_t id : oracle.LiveIds()) {
      final_points.SetRow(row++, oracle.Vector(id));
    }
    ASSERT_EQ(static_cast<size_t>(row), kNumPoints);
  }
  MutableIndex fresh(Metric::kL2, kDim);
  ASSERT_TRUE(
      fresh
          .AdoptFrozen(final_points.CopyGrown(kNumPoints),
                       NswBuilder::Build(final_points, Metric::kL2, nsw))
          .ok());
  harness::OracleDynamicIndex fresh_oracle(Metric::kL2, kDim);
  for (size_t i = 0; i < kNumPoints; ++i) {
    fresh_oracle.Insert(final_points.Row(static_cast<idx_t>(i)));
  }

  const double churned_recall =
      RecallVsOracle(*churned_snapshot, oracle, gen.queries);
  const double fresh_recall =
      RecallVsOracle(*fresh.Acquire(), fresh_oracle, gen.queries);

  RecordProperty("churned_recall", std::to_string(churned_recall));
  RecordProperty("fresh_recall", std::to_string(fresh_recall));
  EXPECT_GT(fresh_recall, 0.90) << "baseline build unexpectedly weak";
  EXPECT_GE(churned_recall, fresh_recall - kEpsilon)
      << "online churn degraded recall: churned=" << churned_recall
      << " fresh=" << fresh_recall;
}

}  // namespace
}  // namespace song
