// Tests for the symmetric min-max heap and the bounded max-heap — the
// paper's bounded-priority-queue substrate (§IV-C). The SMMH is validated
// exhaustively against a std::multiset oracle under randomized workloads.

#include "song/bounded_heap.h"

#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace song {
namespace {

Neighbor N(float d, idx_t id) { return Neighbor(d, id); }

TEST(SymmetricMinMaxHeap, StartsEmpty) {
  SymmetricMinMaxHeap h(8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.capacity(), 8u);
  EXPECT_FALSE(h.full());
}

TEST(SymmetricMinMaxHeap, SingleElementIsBothMinAndMax) {
  SymmetricMinMaxHeap h(4);
  h.Push(N(3.0f, 7));
  EXPECT_EQ(h.Min().id, 7u);
  EXPECT_EQ(h.Max().id, 7u);
  EXPECT_EQ(h.size(), 1u);
}

TEST(SymmetricMinMaxHeap, TwoElementsOrdered) {
  SymmetricMinMaxHeap h(4);
  h.Push(N(5.0f, 1));
  h.Push(N(2.0f, 2));
  EXPECT_FLOAT_EQ(h.Min().dist, 2.0f);
  EXPECT_FLOAT_EQ(h.Max().dist, 5.0f);
}

TEST(SymmetricMinMaxHeap, PopMinAscending) {
  SymmetricMinMaxHeap h(16);
  const std::vector<float> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (size_t i = 0; i < values.size(); ++i) {
    h.Push(N(values[i], static_cast<idx_t>(i)));
    ASSERT_TRUE(h.CheckInvariants()) << "after push " << i;
  }
  float prev = -1.0f;
  while (!h.empty()) {
    const Neighbor n = h.PopMin();
    EXPECT_GE(n.dist, prev);
    prev = n.dist;
    ASSERT_TRUE(h.CheckInvariants());
  }
}

TEST(SymmetricMinMaxHeap, PopMaxDescending) {
  SymmetricMinMaxHeap h(16);
  const std::vector<float> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (size_t i = 0; i < values.size(); ++i) {
    h.Push(N(values[i], static_cast<idx_t>(i)));
  }
  float prev = 1e9f;
  while (!h.empty()) {
    const Neighbor n = h.PopMax();
    EXPECT_LE(n.dist, prev);
    prev = n.dist;
    ASSERT_TRUE(h.CheckInvariants());
  }
}

TEST(SymmetricMinMaxHeap, PushBoundedEvictsWorst) {
  SymmetricMinMaxHeap h(3);
  h.Push(N(1.0f, 1));
  h.Push(N(2.0f, 2));
  h.Push(N(3.0f, 3));
  EXPECT_TRUE(h.full());

  Neighbor evicted;
  EXPECT_TRUE(h.PushBounded(N(2.5f, 4), &evicted));
  EXPECT_EQ(evicted.id, 3u);
  EXPECT_FLOAT_EQ(h.Max().dist, 2.5f);
  EXPECT_EQ(h.size(), 3u);
}

TEST(SymmetricMinMaxHeap, PushBoundedRejectsWorse) {
  SymmetricMinMaxHeap h(2);
  h.Push(N(1.0f, 1));
  h.Push(N(2.0f, 2));
  EXPECT_FALSE(h.PushBounded(N(9.0f, 3)));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_FLOAT_EQ(h.Max().dist, 2.0f);
}

TEST(SymmetricMinMaxHeap, EqualDistancesTieBreakOnId) {
  SymmetricMinMaxHeap h(8);
  h.Push(N(1.0f, 5));
  h.Push(N(1.0f, 2));
  h.Push(N(1.0f, 9));
  EXPECT_EQ(h.Min().id, 2u);
  EXPECT_EQ(h.Max().id, 9u);
}

TEST(SymmetricMinMaxHeap, ClearKeepsCapacity) {
  SymmetricMinMaxHeap h(4);
  h.Push(N(1.0f, 1));
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.capacity(), 4u);
  h.Push(N(2.0f, 2));
  EXPECT_EQ(h.Min().id, 2u);
}

// ---- Randomized oracle comparison. ----

struct SmmhOracleCase {
  uint32_t seed;
  size_t capacity;
  size_t operations;
};

class SmmhOracleTest : public ::testing::TestWithParam<SmmhOracleCase> {};

TEST_P(SmmhOracleTest, MatchesMultisetOracle) {
  const SmmhOracleCase param = GetParam();
  std::mt19937 rng(param.seed);
  std::uniform_real_distribution<float> dist(0.0f, 100.0f);
  SymmetricMinMaxHeap heap(param.capacity);
  std::multiset<Neighbor> oracle;
  idx_t next_id = 0;

  for (size_t op = 0; op < param.operations; ++op) {
    const int action = static_cast<int>(rng() % 4);
    if (action <= 1) {  // push (50%)
      if (heap.full()) continue;
      const Neighbor n(dist(rng), next_id++);
      heap.Push(n);
      oracle.insert(n);
    } else if (action == 2) {  // pop min
      if (heap.empty()) continue;
      const Neighbor got = heap.PopMin();
      ASSERT_EQ(got, *oracle.begin());
      oracle.erase(oracle.begin());
    } else {  // pop max
      if (heap.empty()) continue;
      const Neighbor got = heap.PopMax();
      ASSERT_EQ(got, *std::prev(oracle.end()));
      oracle.erase(std::prev(oracle.end()));
    }
    ASSERT_EQ(heap.size(), oracle.size());
    ASSERT_TRUE(heap.CheckInvariants()) << "op " << op;
    if (!oracle.empty()) {
      ASSERT_EQ(heap.Min(), *oracle.begin());
      ASSERT_EQ(heap.Max(), *std::prev(oracle.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SmmhOracleTest,
    ::testing::Values(SmmhOracleCase{1, 1, 500}, SmmhOracleCase{2, 2, 800},
                      SmmhOracleCase{3, 3, 1000}, SmmhOracleCase{4, 4, 1000},
                      SmmhOracleCase{5, 5, 1500}, SmmhOracleCase{6, 7, 2000},
                      SmmhOracleCase{7, 8, 2000}, SmmhOracleCase{8, 16, 3000},
                      SmmhOracleCase{9, 33, 4000},
                      SmmhOracleCase{10, 100, 6000},
                      SmmhOracleCase{11, 1000, 20000}));

class SmmhBoundedOracleTest : public ::testing::TestWithParam<SmmhOracleCase> {
};

TEST_P(SmmhBoundedOracleTest, PushBoundedMatchesTruncatedOracle) {
  const SmmhOracleCase param = GetParam();
  std::mt19937 rng(param.seed * 7919);
  std::uniform_real_distribution<float> dist(0.0f, 100.0f);
  SymmetricMinMaxHeap heap(param.capacity);
  std::multiset<Neighbor> oracle;  // kept truncated to capacity
  idx_t next_id = 0;

  for (size_t op = 0; op < param.operations; ++op) {
    if (rng() % 3 != 0 || heap.empty()) {
      const Neighbor n(dist(rng), next_id++);
      heap.PushBounded(n);
      oracle.insert(n);
      if (oracle.size() > param.capacity) {
        oracle.erase(std::prev(oracle.end()));
      }
    } else {
      const Neighbor got = heap.PopMin();
      ASSERT_EQ(got, *oracle.begin());
      oracle.erase(oracle.begin());
    }
    ASSERT_EQ(heap.size(), oracle.size());
    ASSERT_TRUE(heap.CheckInvariants());
    if (!oracle.empty()) {
      ASSERT_EQ(heap.Min(), *oracle.begin());
      ASSERT_EQ(heap.Max(), *std::prev(oracle.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SmmhBoundedOracleTest,
    ::testing::Values(SmmhOracleCase{21, 1, 500}, SmmhOracleCase{22, 2, 800},
                      SmmhOracleCase{23, 3, 1500}, SmmhOracleCase{24, 5, 2000},
                      SmmhOracleCase{25, 10, 3000},
                      SmmhOracleCase{26, 64, 5000},
                      SmmhOracleCase{27, 200, 10000}));

// ---- BoundedMaxHeap. ----

TEST(BoundedMaxHeap, KeepsKSmallest) {
  BoundedMaxHeap h(3);
  for (int i = 10; i >= 1; --i) {
    h.PushBounded(N(static_cast<float>(i), static_cast<idx_t>(i)));
  }
  const std::vector<Neighbor> sorted = h.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_FLOAT_EQ(sorted[0].dist, 1.0f);
  EXPECT_FLOAT_EQ(sorted[1].dist, 2.0f);
  EXPECT_FLOAT_EQ(sorted[2].dist, 3.0f);
}

TEST(BoundedMaxHeap, ReportsEviction) {
  BoundedMaxHeap h(2);
  h.PushBounded(N(1.0f, 1));
  h.PushBounded(N(2.0f, 2));
  Neighbor evicted;
  EXPECT_TRUE(h.PushBounded(N(1.5f, 3), &evicted));
  EXPECT_EQ(evicted.id, 2u);
  EXPECT_FALSE(h.PushBounded(N(99.0f, 4)));
}

TEST(BoundedMaxHeap, TakeSortedReturnsAscending) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  BoundedMaxHeap h(50);
  std::multiset<Neighbor> oracle;
  for (idx_t i = 0; i < 500; ++i) {
    const Neighbor n(dist(rng), i);
    h.PushBounded(n);
    oracle.insert(n);
    if (oracle.size() > 50) oracle.erase(std::prev(oracle.end()));
  }
  const std::vector<Neighbor> sorted = h.TakeSorted();
  ASSERT_EQ(sorted.size(), 50u);
  auto it = oracle.begin();
  for (size_t i = 0; i < sorted.size(); ++i, ++it) {
    EXPECT_EQ(sorted[i], *it);
  }
}

TEST(BoundedMaxHeap, MaxTracksWorstKept) {
  BoundedMaxHeap h(2);
  h.PushBounded(N(5.0f, 1));
  EXPECT_FLOAT_EQ(h.Max().dist, 5.0f);
  h.PushBounded(N(3.0f, 2));
  EXPECT_FLOAT_EQ(h.Max().dist, 5.0f);
  h.PushBounded(N(1.0f, 3));
  EXPECT_FLOAT_EQ(h.Max().dist, 3.0f);
}

}  // namespace
}  // namespace song
