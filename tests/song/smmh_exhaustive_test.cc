// Exhaustive small-case validation of the symmetric min-max heap: every
// permutation of small inputs, pushed then drained in every pop pattern,
// must match a sorted reference. Complements the randomized oracle test
// with complete coverage of the boundary sizes where the spine/sibling
// case analysis lives.

#include <algorithm>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "song/bounded_heap.h"

namespace song {
namespace {

TEST(SmmhExhaustive, AllPermutationsUpTo7DrainSortedByMin) {
  for (size_t n = 1; n <= 7; ++n) {
    std::vector<int> values(n);
    std::iota(values.begin(), values.end(), 0);
    do {
      SymmetricMinMaxHeap heap(n);
      for (const int v : values) {
        heap.Push(Neighbor(static_cast<float>(v), static_cast<idx_t>(v)));
        ASSERT_TRUE(heap.CheckInvariants());
      }
      for (size_t i = 0; i < n; ++i) {
        const Neighbor got = heap.PopMin();
        ASSERT_EQ(got.id, static_cast<idx_t>(i))
            << "n=" << n << " perm failed at pop " << i;
        ASSERT_TRUE(heap.CheckInvariants());
      }
    } while (std::next_permutation(values.begin(), values.end()));
  }
}

TEST(SmmhExhaustive, AllPermutationsUpTo7DrainSortedByMax) {
  for (size_t n = 1; n <= 7; ++n) {
    std::vector<int> values(n);
    std::iota(values.begin(), values.end(), 0);
    do {
      SymmetricMinMaxHeap heap(n);
      for (const int v : values) {
        heap.Push(Neighbor(static_cast<float>(v), static_cast<idx_t>(v)));
      }
      for (size_t i = n; i-- > 0;) {
        const Neighbor got = heap.PopMax();
        ASSERT_EQ(got.id, static_cast<idx_t>(i)) << "n=" << n;
        ASSERT_TRUE(heap.CheckInvariants());
      }
    } while (std::next_permutation(values.begin(), values.end()));
  }
}

TEST(SmmhExhaustive, AllPopPatternsOfSixElements) {
  // 2^6 alternation patterns of pop-min / pop-max over every permutation of
  // 6 elements: the two-ended drain order must match a sorted deque.
  std::vector<int> values(6);
  std::iota(values.begin(), values.end(), 0);
  do {
    for (unsigned pattern = 0; pattern < (1u << 6); ++pattern) {
      SymmetricMinMaxHeap heap(6);
      for (const int v : values) {
        heap.Push(Neighbor(static_cast<float>(v), static_cast<idx_t>(v)));
      }
      int lo = 0, hi = 5;
      for (int step = 0; step < 6; ++step) {
        if ((pattern >> step) & 1) {
          ASSERT_EQ(heap.PopMax().id, static_cast<idx_t>(hi--));
        } else {
          ASSERT_EQ(heap.PopMin().id, static_cast<idx_t>(lo++));
        }
        ASSERT_TRUE(heap.CheckInvariants());
      }
    }
  } while (std::next_permutation(values.begin(), values.end()));
}

}  // namespace
}  // namespace song
