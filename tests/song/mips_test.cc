// Tests for MIPS support: the Möbius transformation's geometry and
// end-to-end inner-product search quality through the SONG pipeline.

#include "song/mips.h"

#include <cmath>

#include "baselines/flat_index.h"
#include "core/random.h"
#include "core/recall.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "song/song_searcher.h"

namespace song {
namespace {

TEST(Mobius, InvertsNorm) {
  Dataset data(2, 2);
  const float a[2] = {3.0f, 4.0f};  // norm 5
  const float z[2] = {0.0f, 0.0f};
  data.SetRow(0, a);
  data.SetRow(1, z);
  const Dataset t = MobiusTransform(data);
  // x / ||x||^2: norm becomes 1/||x|| = 0.2.
  const double norm = std::sqrt(double{t.Row(0)[0]} * t.Row(0)[0] +
                                double{t.Row(0)[1]} * t.Row(0)[1]);
  EXPECT_NEAR(norm, 0.2, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(t.Row(0)[0] / t.Row(0)[1], 0.75, 1e-5);
  // Zero maps to zero.
  EXPECT_FLOAT_EQ(t.Row(1)[0], 0.0f);
  EXPECT_FLOAT_EQ(t.Row(1)[1], 0.0f);
}

TEST(Mobius, IsInvolutionUpToScale) {
  // Applying the transform twice restores the original vector.
  Dataset data(1, 3);
  const float a[3] = {1.0f, -2.0f, 0.5f};
  data.SetRow(0, a);
  const Dataset twice = MobiusTransform(MobiusTransform(data));
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(twice.Row(0)[d], a[d], 1e-5f);
  }
}

TEST(Mips, MobiusGraphReachesGoodRecall) {
  const size_t n = 3000, dim = 24, nq = 30;
  Dataset items(n, dim);
  Dataset users(nq, dim);
  RandomEngine rng(17);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    const float boost = static_cast<float>(0.5 + 2.0 * rng.NextUniform());
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian()) * boost;
    items.SetRow(static_cast<idx_t>(i), row.data());
  }
  for (size_t i = 0; i < nq; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
    users.SetRow(static_cast<idx_t>(i), row.data());
  }
  FlatIndex flat(&items, Metric::kInnerProduct);
  const auto truth = FlatIndex::Ids(flat.BatchSearch(users, 10, 1));

  const Dataset mobius = MobiusTransform(items);
  NswBuildOptions build;
  build.num_threads = 1;
  const FixedDegreeGraph graph = NswBuilder::Build(mobius, Metric::kL2,
                                                   build);
  SongSearcher searcher(&items, &graph, Metric::kInnerProduct);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 128;
  SongWorkspace ws;
  std::vector<std::vector<idx_t>> ids(nq);
  for (size_t q = 0; q < nq; ++q) {
    const auto found =
        searcher.Search(users.Row(static_cast<idx_t>(q)), 10, options, &ws);
    for (const Neighbor& n : found) ids[q].push_back(n.id);
  }
  EXPECT_GE(MeanRecallAtK(ids, truth, 10), 0.7);
}

}  // namespace
}  // namespace song
