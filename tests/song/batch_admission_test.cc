// Admission-control and input-validation tests for the serving layer:
// batch shedding under max_inflight, NaN/Inf query rejection, dim-mismatch
// and bad-k refusal, and the capacity-checked TryPush/TryReset admission on
// the bounded per-query structures.

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "song/batch_engine.h"
#include "song/bounded_heap.h"
#include "song/open_addressing_set.h"
#include "song/song_searcher.h"
#include "song/visited_table.h"

namespace song {
namespace {

struct AdmissionFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;

  static const AdmissionFixture& Get() {
    static AdmissionFixture* f = [] {
      auto* fx = new AdmissionFixture();
      SyntheticSpec spec;
      spec.name = "admission";
      spec.dim = 16;
      spec.num_points = 2000;
      spec.num_queries = 16;
      spec.seed = 777;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      NswBuildOptions nsw;
      nsw.degree = 8;
      nsw.num_threads = 1;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      return fx;
    }();
    return *f;
  }
};

TEST(BatchAdmission, DimMismatchIsInvalidArgument) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);
  Dataset wrong(4, fx.data.dim() + 1);
  const auto result = engine.TrySearch(wrong, 10, SongSearchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchAdmission, BadKAndOversizedQueueRefused) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);
  EXPECT_EQ(engine.TrySearch(fx.queries, 0, SongSearchOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  SongSearchOptions huge;
  huge.queue_size = SongSearcher::kMaxQueueSize + 1;
  EXPECT_EQ(engine.TrySearch(fx.queries, 10, huge).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(BatchAdmission, NanAndInfQueriesAreRejectedNotSearched) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);

  Dataset mixed(3, fx.data.dim());
  std::vector<float> row(fx.data.dim());
  for (size_t d = 0; d < row.size(); ++d) row[d] = fx.queries.Row(0)[d];
  mixed.SetRow(0, row.data());  // valid
  row[2] = std::numeric_limits<float>::quiet_NaN();
  mixed.SetRow(1, row.data());  // NaN
  row[2] = std::numeric_limits<float>::infinity();
  mixed.SetRow(2, row.data());  // Inf

  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  const auto result = engine.TrySearch(mixed, 5, SongSearchOptions{},
                                       telemetry);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->queries_rejected, 2u);
  EXPECT_EQ(result->rejected[0], 0);
  EXPECT_EQ(result->rejected[1], 1);
  EXPECT_EQ(result->rejected[2], 1);
  EXPECT_EQ(result->results[0].size(), 5u);   // valid query served normally
  EXPECT_TRUE(result->results[1].empty());
  EXPECT_TRUE(result->results[2].empty());
  EXPECT_EQ(registry.GetCounter("song.batch.rejected_queries").Value(), 2u);
}

TEST(BatchAdmission, ValidateQueryCatchesNanInfAndNull) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  EXPECT_TRUE(searcher.ValidateQuery(fx.queries.Row(0)).ok());
  EXPECT_EQ(searcher.ValidateQuery(nullptr).code(),
            StatusCode::kInvalidArgument);
  std::vector<float> bad(fx.data.dim(), 1.0f);
  bad.back() = std::nanf("");
  EXPECT_EQ(searcher.ValidateQuery(bad.data()).code(),
            StatusCode::kInvalidArgument);
  bad.back() = -std::numeric_limits<float>::infinity();
  EXPECT_EQ(searcher.ValidateQuery(bad.data()).code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchAdmission, TrySearchMatchesSearchForValidInput) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  SongSearchOptions options;
  options.queue_size = 48;
  SongWorkspace ws;
  const auto plain = searcher.Search(fx.queries.Row(0), 10, options, &ws);
  const auto checked = searcher.TrySearch(fx.queries.Row(0), 10, options,
                                          &ws);
  ASSERT_TRUE(checked.ok());
  ASSERT_EQ(checked->size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ((*checked)[i].id, plain[i].id);
    EXPECT_EQ((*checked)[i].dist, plain[i].dist);
  }
}

TEST(BatchAdmission, MaxInflightShedsConcurrentBatches) {
  const AdmissionFixture& fx = AdmissionFixture::Get();
  SongSearcher searcher(&fx.data, &fx.graph, Metric::kL2);
  BatchEngine engine(&searcher, 1);
  SongSearchOptions slow;
  slow.queue_size = 512;  // enough work to hold the inflight slot

  obs::MetricsRegistry registry;
  BatchTelemetry telemetry;
  telemetry.registry = &registry;
  BatchAdmission admission;
  admission.max_inflight = 1;

  std::atomic<bool> worker_done{false};
  std::thread worker([&] {
    for (int i = 0; i < 50 && !worker_done.load(); ++i) {
      const auto r = engine.TrySearch(fx.queries, 10, slow, telemetry,
                                      admission);
      ASSERT_TRUE(r.ok());
    }
    worker_done.store(true);
  });

  // Keep trying while the worker holds the slot; with max_inflight=1 the
  // overlapping submission must be shed with kResourceExhausted.
  bool shed = false;
  while (!worker_done.load() && !shed) {
    if (engine.inflight() == 0) {
      std::this_thread::yield();
      continue;
    }
    const auto r = engine.TrySearch(fx.queries, 10, slow, telemetry,
                                    admission);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      shed = true;
    }
  }
  worker_done.store(true);
  worker.join();
  if (shed) {
    EXPECT_GE(registry.GetCounter("song.batch.shed").Value(), 1u);
  }
  EXPECT_EQ(engine.inflight(), 0u);  // accounting balanced either way
}

TEST(BoundedStructures, TryPushReportsCapacityExhaustion) {
  SymmetricMinMaxHeap q(2);
  EXPECT_TRUE(q.TryPush(Neighbor{1.0f, 1}).ok());
  EXPECT_TRUE(q.TryPush(Neighbor{2.0f, 2}).ok());
  const Status full = q.TryPush(Neighbor{3.0f, 3});
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.size(), 2u);

  BoundedMaxHeap topk(2);
  EXPECT_TRUE(topk.TryPush(Neighbor{1.0f, 1}).ok());
  EXPECT_TRUE(topk.TryPush(Neighbor{2.0f, 2}).ok());
  EXPECT_EQ(topk.TryPush(Neighbor{3.0f, 3}).code(),
            StatusCode::kResourceExhausted);
}

TEST(BoundedStructures, TryResetRejectsAbsurdCapacities) {
  OpenAddressingSet set;
  EXPECT_TRUE(set.TryReset(1024).ok());
  EXPECT_EQ(set.TryReset(OpenAddressingSet::kMaxCapacity + 1).code(),
            StatusCode::kResourceExhausted);

  VisitedTable table;
  EXPECT_TRUE(table.TryReset(VisitedStructure::kHashTable, 4096).ok());
  EXPECT_EQ(table
                .TryReset(VisitedStructure::kHashTable,
                          OpenAddressingSet::kMaxCapacity + 1)
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(table
                .TryReset(VisitedStructure::kBloomFilter, 128,
                          /*bloom_bits=*/~size_t{0})
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace song
