// Tests for the visited-set structures (paper §IV-B / §IV-E): the
// open-addressing hash set, the Bloom filter (including the paper's sizing
// claim: ~300 u32 words keep false positives under 1% for 1000 insertions),
// the Cuckoo filter (deletion support, no false negatives), and the
// VisitedTable facade.

#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "song/bloom_filter.h"
#include "song/cuckoo_filter.h"
#include "song/open_addressing_set.h"
#include "song/visited_table.h"

namespace song {
namespace {

// ---- OpenAddressingSet ----

TEST(OpenAddressingSet, InsertAndContains) {
  OpenAddressingSet set(16);
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OpenAddressingSet, DuplicateInsertRejected) {
  OpenAddressingSet set(16);
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OpenAddressingSet, EraseMakesRoomAndProbesPastTombstones) {
  OpenAddressingSet set(8);
  for (idx_t i = 0; i < 8; ++i) EXPECT_TRUE(set.Insert(i));
  EXPECT_TRUE(set.full());
  EXPECT_TRUE(set.Erase(3));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 7u);
  // Everything else still findable despite the tombstone.
  for (idx_t i = 0; i < 8; ++i) {
    if (i != 3) EXPECT_TRUE(set.Contains(i)) << i;
  }
  EXPECT_TRUE(set.Insert(100));
  EXPECT_TRUE(set.Contains(100));
}

TEST(OpenAddressingSet, EraseMissingReturnsFalse) {
  OpenAddressingSet set(8);
  set.Insert(1);
  EXPECT_FALSE(set.Erase(2));
  EXPECT_EQ(set.size(), 1u);
}

TEST(OpenAddressingSet, InsertFailsAtCapacity) {
  OpenAddressingSet set(4);
  for (idx_t i = 0; i < 4; ++i) EXPECT_TRUE(set.Insert(i));
  EXPECT_FALSE(set.Insert(99));
  EXPECT_FALSE(set.Contains(99));
}

TEST(OpenAddressingSet, ClearEmptiesButKeepsAllocation) {
  OpenAddressingSet set(16);
  for (idx_t i = 0; i < 10; ++i) set.Insert(i);
  const size_t bytes = set.MemoryBytes();
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.MemoryBytes(), bytes);
}

TEST(OpenAddressingSet, LoadFactorBelowHalf) {
  OpenAddressingSet set(100);
  EXPECT_GE(set.slot_count(), 200u);
}

TEST(OpenAddressingSet, RandomizedAgainstStdSet) {
  std::mt19937 rng(99);
  OpenAddressingSet set(512);
  std::set<idx_t> oracle;
  for (int op = 0; op < 20000; ++op) {
    const idx_t key = rng() % 1024;
    const int action = rng() % 3;
    if (action == 0 && oracle.size() < 512) {
      EXPECT_EQ(set.Insert(key), oracle.insert(key).second);
    } else if (action == 1) {
      EXPECT_EQ(set.Erase(key), oracle.erase(key) > 0);
    } else {
      EXPECT_EQ(set.Contains(key), oracle.count(key) > 0) << key;
    }
    EXPECT_EQ(set.size(), oracle.size());
  }
}

TEST(OpenAddressingSet, TracksProbeCount) {
  OpenAddressingSet set(16);
  const size_t before = set.probes();
  set.Insert(1);
  set.Contains(1);
  EXPECT_GT(set.probes(), before);
}

// ---- BloomFilter ----

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(9600);
  std::mt19937 rng(1);
  std::vector<idx_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng());
  for (const idx_t k : keys) bloom.Insert(k);
  for (const idx_t k : keys) EXPECT_TRUE(bloom.Contains(k));
}

TEST(BloomFilter, PaperSizingClaimUnderOnePercentFp) {
  // Paper §IV-B: "a Bloom filter with around 300 32-bit integers has less
  // than 1% false positives when inserting 1,000 vertices".
  BloomFilter bloom(300 * 32);
  for (idx_t k = 0; k < 1000; ++k) bloom.Insert(k);
  int fp = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.Contains(static_cast<idx_t>(1000000 + i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

TEST(BloomFilter, TheoreticalRateMatchesEmpirical) {
  const size_t bits = 4096;
  const size_t hashes = 5;
  const size_t n = 500;
  BloomFilter bloom(bits, hashes);
  for (idx_t k = 0; k < n; ++k) bloom.Insert(k * 7919);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.Contains(static_cast<idx_t>(0x40000000 + i))) ++fp;
  }
  const double empirical = static_cast<double>(fp) / probes;
  const double theoretical =
      BloomFilter::TheoreticalFpRate(bloom.bit_count(), hashes, n);
  EXPECT_NEAR(empirical, theoretical, 0.02);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bloom(1024);
  bloom.Insert(42);
  ASSERT_TRUE(bloom.Contains(42));
  bloom.Clear();
  EXPECT_FALSE(bloom.Contains(42));
  EXPECT_EQ(bloom.size(), 0u);
}

TEST(BloomFilter, MemoryFootprintIsConstant) {
  BloomFilter bloom(9600);
  const size_t bytes = bloom.MemoryBytes();
  for (idx_t k = 0; k < 5000; ++k) bloom.Insert(k);
  EXPECT_EQ(bloom.MemoryBytes(), bytes);
  EXPECT_LE(bytes, 1280u);  // ~300 u32 + word rounding
}

TEST(BloomFilter, MoreBitsFewerFalsePositives) {
  auto fp_rate = [](size_t bits) {
    BloomFilter bloom(bits);
    for (idx_t k = 0; k < 2000; ++k) bloom.Insert(k);
    int fp = 0;
    for (int i = 0; i < 10000; ++i) {
      if (bloom.Contains(static_cast<idx_t>(100000 + i))) ++fp;
    }
    return static_cast<double>(fp) / 10000.0;
  };
  EXPECT_LT(fp_rate(1 << 16), fp_rate(1 << 12));
}

// ---- CuckooFilter ----

TEST(CuckooFilter, InsertContainsErase) {
  CuckooFilter filter(128);
  EXPECT_FALSE(filter.Contains(7));
  EXPECT_TRUE(filter.Insert(7));
  EXPECT_TRUE(filter.Contains(7));
  EXPECT_TRUE(filter.Erase(7));
  EXPECT_FALSE(filter.Contains(7));
}

TEST(CuckooFilter, NoFalseNegativesUnderLoad) {
  CuckooFilter filter(1000);
  std::vector<idx_t> keys;
  for (idx_t k = 0; k < 800; ++k) keys.push_back(k * 2654435761u);
  for (const idx_t k : keys) ASSERT_TRUE(filter.Insert(k));
  for (const idx_t k : keys) EXPECT_TRUE(filter.Contains(k)) << k;
}

TEST(CuckooFilter, LowFalsePositiveRate) {
  CuckooFilter filter(1000);
  for (idx_t k = 0; k < 800; ++k) filter.Insert(k);
  int fp = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    if (filter.Contains(static_cast<idx_t>(1000000 + i))) ++fp;
  }
  // 16-bit fingerprints, 2 buckets of 4 slots: expected FP ~ 8/2^16 ≈ 0.012%.
  EXPECT_LT(static_cast<double>(fp) / probes, 0.005);
}

TEST(CuckooFilter, EraseMissingReturnsFalse) {
  CuckooFilter filter(64);
  filter.Insert(1);
  EXPECT_FALSE(filter.Erase(2));
}

TEST(CuckooFilter, DeleteThenReinsert) {
  CuckooFilter filter(64);
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(filter.Insert(9));
    EXPECT_TRUE(filter.Contains(9));
    EXPECT_TRUE(filter.Erase(9));
    EXPECT_FALSE(filter.Contains(9));
  }
  EXPECT_EQ(filter.size(), 0u);
}

TEST(CuckooFilter, ClearResets) {
  CuckooFilter filter(64);
  filter.Insert(5);
  filter.Clear();
  EXPECT_FALSE(filter.Contains(5));
  EXPECT_EQ(filter.size(), 0u);
}

TEST(CuckooFilter, SmallerThanHashTableForSameCapacity) {
  // §IV-B: probabilistic structures trade accuracy for memory.
  CuckooFilter cuckoo(1024);
  OpenAddressingSet hash(1024);
  EXPECT_LT(cuckoo.MemoryBytes(), hash.MemoryBytes());
}

// ---- VisitedTable facade ----

class VisitedTableTest : public ::testing::TestWithParam<VisitedStructure> {};

TEST_P(VisitedTableTest, BasicProtocol) {
  VisitedTable table;
  table.Reset(GetParam(), 256);
  EXPECT_FALSE(table.Test(3));
  table.Insert(3);
  EXPECT_TRUE(table.Test(3));
  table.Clear();
  EXPECT_FALSE(table.Test(3));
}

TEST_P(VisitedTableTest, NoFalseNegatives) {
  VisitedTable table;
  table.Reset(GetParam(), 512);
  for (idx_t k = 0; k < 400; ++k) table.Insert(k * 31 + 7);
  for (idx_t k = 0; k < 400; ++k) EXPECT_TRUE(table.Test(k * 31 + 7));
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, VisitedTableTest,
    ::testing::Values(VisitedStructure::kHashTable,
                      VisitedStructure::kBloomFilter,
                      VisitedStructure::kCuckooFilter),
    [](const ::testing::TestParamInfo<VisitedStructure>& info) {
      return VisitedStructureName(info.param);
    });

TEST(VisitedTable, DeletionSupportMatrix) {
  VisitedTable table;
  table.Reset(VisitedStructure::kHashTable, 16);
  EXPECT_TRUE(table.SupportsDeletion());
  table.Reset(VisitedStructure::kCuckooFilter, 16);
  EXPECT_TRUE(table.SupportsDeletion());
  table.Reset(VisitedStructure::kBloomFilter, 16);
  EXPECT_FALSE(table.SupportsDeletion());
}

TEST(VisitedTable, BloomIsSmallest) {
  VisitedTable hash, bloom;
  hash.Reset(VisitedStructure::kHashTable, 1024);
  bloom.Reset(VisitedStructure::kBloomFilter, 1024);
  // Paper: "the Bloom filter method takes at least 3x less memory".
  EXPECT_LE(bloom.MemoryBytes() * 3, hash.MemoryBytes());
}

}  // namespace
}  // namespace song
