// Tests for the 1-bit random projection path (paper §VII): collision
// probability vs angle, code compression accounting (Table IV), and
// Hamming-space SONG search quality (Fig 14).

#include <cmath>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "hashing/hashed_index.h"
#include "hashing/random_projection.h"

namespace song {
namespace {

TEST(RandomProjection, DeterministicForSeed) {
  RandomProjection a(16, 64, ProjectionKind::kNormal, 7);
  RandomProjection b(16, 64, ProjectionKind::kNormal, 7);
  Dataset data(1, 16);
  const float row[16] = {1, -2, 3, 4, -5, 6, 7, 8, 9, 1, 2, 3, 4, 5, 6, 7};
  data.SetRow(0, row);
  const BinaryCodes ca = a.EncodeDataset(data, 1);
  const BinaryCodes cb = b.EncodeDataset(data, 1);
  EXPECT_EQ(HammingDistance(ca.Row(0), cb.Row(0), ca.words()), 0u);
}

TEST(RandomProjection, IdenticalVectorsCollideCompletely) {
  RandomProjection proj(8, 128);
  Dataset data(2, 8);
  const float row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  data.SetRow(0, row);
  data.SetRow(1, row);
  const BinaryCodes codes = proj.EncodeDataset(data, 1);
  EXPECT_EQ(codes.Hamming(0, 1), 0u);
}

TEST(RandomProjection, OppositeVectorsDisagreeCompletely) {
  RandomProjection proj(8, 128);
  Dataset data(2, 8);
  float row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  data.SetRow(0, row);
  for (float& v : row) v = -v;
  data.SetRow(1, row);
  const BinaryCodes codes = proj.EncodeDataset(data, 1);
  EXPECT_EQ(codes.Hamming(0, 1), 128u);
}

TEST(RandomProjection, CollisionProbabilityTracksAngle) {
  // Pr[sign match] = 1 - theta/pi (paper §VII). Check 90° vectors: expected
  // Hamming distance = bits/2.
  const size_t bits = 2048;
  RandomProjection proj(2, bits, ProjectionKind::kNormal, 3);
  Dataset data(2, 2);
  const float x[2] = {1, 0};
  const float y[2] = {0, 1};
  data.SetRow(0, x);
  data.SetRow(1, y);
  const BinaryCodes codes = proj.EncodeDataset(data, 1);
  const double frac =
      static_cast<double>(codes.Hamming(0, 1)) / static_cast<double>(bits);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(RandomProjection, SixtyDegreeAngle) {
  const size_t bits = 4096;
  RandomProjection proj(2, bits, ProjectionKind::kNormal, 4);
  Dataset data(2, 2);
  const float x[2] = {1, 0};
  const float y[2] = {0.5f, std::sqrt(3.0f) / 2.0f};  // 60°
  data.SetRow(0, x);
  data.SetRow(1, y);
  const BinaryCodes codes = proj.EncodeDataset(data, 1);
  const double frac =
      static_cast<double>(codes.Hamming(0, 1)) / static_cast<double>(bits);
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.04);
}

TEST(RandomProjection, CauchyKindAlsoWorks) {
  RandomProjection proj(8, 64, ProjectionKind::kCauchy, 5);
  Dataset data(2, 8);
  const float row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  data.SetRow(0, row);
  data.SetRow(1, row);
  const BinaryCodes codes = proj.EncodeDataset(data, 1);
  EXPECT_EQ(codes.Hamming(0, 1), 0u);
}

TEST(RandomProjection, CompressionMatchesTableIV) {
  // Table IV: 784-dim float data (3136 B/point) at 128 bits -> 16 B/point,
  // i.e. a ~196x reduction; the paper quotes "more than 190 times smaller".
  const size_t n = 1000;
  Dataset data(n, 784);
  BinaryCodes codes(n, 128);
  EXPECT_EQ(data.PayloadBytes(), n * 3136u);
  EXPECT_EQ(codes.PayloadBytes(), n * 16u);
  EXPECT_GT(static_cast<double>(data.PayloadBytes()) /
                static_cast<double>(codes.PayloadBytes()),
            190.0);
}

// ---- End-to-end hashed search (Fig 14 mechanics). ----

struct HashedFixture {
  Dataset data;
  Dataset queries;
  FixedDegreeGraph graph;
  std::vector<std::vector<idx_t>> gt;

  static const HashedFixture& Get() {
    static HashedFixture* f = [] {
      auto* fx = new HashedFixture();
      SyntheticSpec spec;
      spec.name = "hashed";
      spec.dim = 64;
      spec.num_points = 3000;
      spec.num_queries = 50;
      spec.num_clusters = 10;
      spec.cluster_std = 0.35;
      spec.duplicates_per_point = 6;  // MNIST8m-style deformation families
      spec.duplicate_std = 0.06;
      spec.seed = 1212;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      // Sign random projections estimate angular similarity; normalize so
      // the L2 ground truth orders identically to cosine.
      fx->data.NormalizeRows();
      fx->queries.NormalizeRows();
      NswBuildOptions nsw;
      nsw.degree = 16;
      nsw.num_threads = 2;
      fx->graph = NswBuilder::Build(fx->data, Metric::kL2, nsw);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->gt = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 0));
      return fx;
    }();
    return *f;
  }
};

double HashedRecall(size_t bits, size_t k) {
  const HashedFixture& fx = HashedFixture::Get();
  RandomProjection proj(fx.data.dim(), bits, ProjectionKind::kNormal, 9);
  const BinaryCodes codes = proj.EncodeDataset(fx.data, 2);
  HashedSongIndex index(&codes, &fx.graph, &proj);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 512;
  SongWorkspace ws;
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found = index.Search(fx.queries.Row(static_cast<idx_t>(q)), k,
                                    options, &ws);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  return MeanRecallAtK(results, fx.gt, k);
}

TEST(HashedSongIndex, Top1RecallReasonableAt256Bits) {
  // Fig 14: mid-size codes track the original data. Top-1 among
  // near-duplicate families is the hardest case for a 1-bit sketch (the
  // estimator's per-bit variance blurs tiny angular gaps), so the bar here
  // is "far better than chance and clearly useful", not parity.
  EXPECT_GE(HashedRecall(256, 1), 0.5);
}

TEST(HashedSongIndex, FamilyRetrievalIsEasyAt256Bits) {
  // Retrieving the near-duplicate family (the 5 other deformations of the
  // query's prototype, at tiny angles) is easy for the sketch -- recall@5
  // shows the hashing preserves neighborhoods even when exact within-family
  // ranking (recall@1) is noisy.
  EXPECT_GE(HashedRecall(256, 5), 0.6);
}

TEST(HashedSongIndex, MoreBitsMoreRecall) {
  const double r32 = HashedRecall(32, 1);
  const double r512 = HashedRecall(512, 1);
  EXPECT_GT(r512, r32);
}

TEST(HashedSongIndex, DeviceMemoryIsCodesPlusGraph) {
  const HashedFixture& fx = HashedFixture::Get();
  RandomProjection proj(fx.data.dim(), 128, ProjectionKind::kNormal, 9);
  const BinaryCodes codes = proj.EncodeDataset(fx.data, 2);
  HashedSongIndex index(&codes, &fx.graph, &proj);
  EXPECT_EQ(index.DeviceMemoryBytes(),
            codes.PayloadBytes() + fx.graph.MemoryBytes());
  EXPECT_LT(index.DeviceMemoryBytes(),
            fx.data.PayloadBytes() + fx.graph.MemoryBytes());
}

TEST(HashedSongIndex, StatsCountHammingBytes) {
  const HashedFixture& fx = HashedFixture::Get();
  RandomProjection proj(fx.data.dim(), 128, ProjectionKind::kNormal, 9);
  const BinaryCodes codes = proj.EncodeDataset(fx.data, 2);
  HashedSongIndex index(&codes, &fx.graph, &proj);
  SongSearchOptions options;
  SearchStats stats;
  index.Search(fx.queries.Row(0), 5, options, &stats);
  EXPECT_EQ(stats.data_bytes_loaded,
            stats.distance_computations * (128 / 8));
}

}  // namespace
}  // namespace song
