// Tests for the locality-aware reordering pass: permutation validity,
// structural isomorphism of the permuted graph/dataset, and the headline
// guarantee — search over a reordered index returns exactly the same
// result sets (ids and distances) once ids are mapped back.

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/nsw_builder.h"
#include "graph/reorder.h"
#include "song/song_searcher.h"

namespace song {
namespace {

FixedDegreeGraph MakeRingGraph(size_t n, size_t degree) {
  FixedDegreeGraph g(n, degree);
  for (size_t v = 0; v < n; ++v) {
    std::vector<idx_t> nbrs;
    for (size_t j = 1; j <= degree / 2 && j < n; ++j) {
      nbrs.push_back(static_cast<idx_t>((v + j) % n));
      nbrs.push_back(static_cast<idx_t>((v + n - j) % n));
    }
    if (nbrs.size() > degree) nbrs.resize(degree);
    g.SetNeighbors(static_cast<idx_t>(v), nbrs);
  }
  return g;
}

void ExpectValidPermutation(const GraphPermutation& perm, size_t n) {
  ASSERT_EQ(perm.old_to_new.size(), n);
  ASSERT_EQ(perm.new_to_old.size(), n);
  std::vector<bool> hit(n, false);
  for (size_t old_id = 0; old_id < n; ++old_id) {
    const idx_t new_id = perm.old_to_new[old_id];
    ASSERT_LT(new_id, n);
    EXPECT_FALSE(hit[new_id]) << "duplicate new id " << new_id;
    hit[new_id] = true;
    EXPECT_EQ(perm.new_to_old[new_id], old_id);
  }
}

TEST(ReorderTest, NoneIsIdentity) {
  const FixedDegreeGraph g = MakeRingGraph(10, 4);
  const GraphPermutation perm = ComputeReorder(g, GraphReorder::kNone);
  ExpectValidPermutation(perm, 10);
  for (idx_t v = 0; v < 10; ++v) EXPECT_EQ(perm.old_to_new[v], v);
}

TEST(ReorderTest, BfsIsValidAndEntryFirst) {
  const FixedDegreeGraph g = MakeRingGraph(50, 6);
  const GraphPermutation perm = ComputeReorder(g, GraphReorder::kBfs, 17);
  ExpectValidPermutation(perm, 50);
  EXPECT_EQ(perm.old_to_new[17], 0u);  // entry is relabeled to 0
  // Ring from 17: direct neighbors must land within the first BFS level.
  EXPECT_LE(perm.old_to_new[18], 6u);
  EXPECT_LE(perm.old_to_new[16], 6u);
}

TEST(ReorderTest, BfsCoversDisconnectedComponents) {
  // Two 5-cliques with no edges between them.
  std::vector<std::vector<idx_t>> adj(10);
  for (idx_t base : {idx_t{0}, idx_t{5}}) {
    for (idx_t v = base; v < base + 5; ++v) {
      for (idx_t u = base; u < base + 5; ++u) {
        if (u != v) adj[v].push_back(u);
      }
    }
  }
  const FixedDegreeGraph g = FixedDegreeGraph::FromAdjacency(adj, 4);
  const GraphPermutation perm = ComputeReorder(g, GraphReorder::kBfs, 0);
  ExpectValidPermutation(perm, 10);
  // The unreachable second clique keeps old-id order after the first.
  for (idx_t v = 5; v < 9; ++v) {
    EXPECT_LT(perm.old_to_new[v], perm.old_to_new[v + 1]);
  }
}

TEST(ReorderTest, DegreeDescendingOrdersByDegree) {
  std::vector<std::vector<idx_t>> adj(5);
  adj[0] = {1};
  adj[1] = {0, 2};
  adj[2] = {0, 1, 3};
  adj[3] = {0, 1, 2, 4};
  adj[4] = {3};
  const FixedDegreeGraph g = FixedDegreeGraph::FromAdjacency(adj, 4);
  const GraphPermutation perm =
      ComputeReorder(g, GraphReorder::kDegreeDescending);
  ExpectValidPermutation(perm, 5);
  EXPECT_EQ(perm.new_to_old[0], 3u);  // degree 4 first
  EXPECT_EQ(perm.new_to_old[1], 2u);  // then degree 3
  EXPECT_EQ(perm.new_to_old[2], 1u);  // degree 2
  // Degree-1 tie between 0 and 4 keeps old-id order.
  EXPECT_EQ(perm.new_to_old[3], 0u);
  EXPECT_EQ(perm.new_to_old[4], 4u);
}

TEST(ReorderTest, PermuteGraphPreservesEdges) {
  const FixedDegreeGraph g = MakeRingGraph(30, 6);
  const GraphPermutation perm = ComputeReorder(g, GraphReorder::kBfs, 3);
  const FixedDegreeGraph pg = PermuteGraph(g, perm);
  ASSERT_EQ(pg.num_vertices(), g.num_vertices());
  ASSERT_EQ(pg.degree(), g.degree());
  for (idx_t old_v = 0; old_v < 30; ++old_v) {
    const std::vector<idx_t> old_nbrs = g.Neighbors(old_v);
    std::vector<idx_t> expect;
    for (const idx_t u : old_nbrs) expect.push_back(perm.old_to_new[u]);
    EXPECT_EQ(pg.Neighbors(perm.old_to_new[old_v]), expect)
        << "old vertex " << old_v;
  }
}

TEST(ReorderTest, PermuteCsrMatchesPermutedFixedDegree) {
  const FixedDegreeGraph g = MakeRingGraph(24, 4);
  const GraphPermutation perm =
      ComputeReorder(g, GraphReorder::kDegreeDescending);
  const CsrGraph csr = CsrGraph::FromFixedDegree(g);
  const CsrGraph pcsr = PermuteCsr(csr, perm);
  const FixedDegreeGraph pg = PermuteGraph(g, perm);
  ASSERT_EQ(pcsr.num_vertices(), pg.num_vertices());
  ASSERT_EQ(pcsr.num_edges(), csr.num_edges());
  for (idx_t v = 0; v < 24; ++v) {
    size_t count = 0;
    const idx_t* nbrs = pcsr.Neighbors(v, &count);
    EXPECT_EQ(std::vector<idx_t>(nbrs, nbrs + count), pg.Neighbors(v));
  }
}

TEST(ReorderTest, PermuteDatasetMovesRows) {
  Dataset data(6, 5);
  std::vector<float> row(5);
  for (idx_t v = 0; v < 6; ++v) {
    std::fill(row.begin(), row.end(), static_cast<float>(v));
    data.SetRow(v, row.data());
  }
  const FixedDegreeGraph g = MakeRingGraph(6, 2);
  const GraphPermutation perm = ComputeReorder(g, GraphReorder::kBfs, 4);
  const Dataset pdata = PermuteDataset(data, perm);
  for (idx_t old_v = 0; old_v < 6; ++old_v) {
    EXPECT_EQ(pdata.Row(perm.old_to_new[old_v])[0], static_cast<float>(old_v));
  }
}

// The tentpole guarantee: searching the reordered index returns exactly
// the same (id, distance) result sets as the original once the id map is
// applied — across metrics and visited-structure configs.
TEST(ReorderTest, ReorderedSearchReturnsIdenticalResults) {
  SyntheticSpec spec;
  spec.dim = 24;
  spec.num_points = 600;
  spec.num_queries = 20;
  spec.num_clusters = 8;
  spec.seed = 321;
  const SyntheticData gen = GenerateSynthetic(spec);

  for (const Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    const FixedDegreeGraph graph = NswBuilder::Build(gen.points, metric, {});
    const SongSearcher base(&gen.points, &graph, metric);

    for (const GraphReorder strategy :
         {GraphReorder::kBfs, GraphReorder::kDegreeDescending}) {
      const ReorderedIndex ri = ReorderIndex(gen.points, graph, strategy);
      ExpectValidPermutation(ri.perm, gen.points.num());
      SongSearcher reordered(&ri.data, &ri.graph, metric, ri.entry);
      reordered.SetResultIdMap(ri.perm.new_to_old);

      for (const SongSearchOptions& options :
           {SongSearchOptions::HashTable(),
            SongSearchOptions::HashTableSelDel(),
            SongSearchOptions::CpuEngineered()}) {
        for (size_t q = 0; q < gen.queries.num(); ++q) {
          const float* query = gen.queries.Row(static_cast<idx_t>(q));
          const auto expect = base.Search(query, 10, options);
          const auto got = reordered.Search(query, 10, options);
          ASSERT_EQ(got.size(), expect.size())
              << MetricName(metric) << " " << GraphReorderName(strategy)
              << " " << options.Name() << " query " << q;
          for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].id, expect[i].id)
                << MetricName(metric) << " " << GraphReorderName(strategy)
                << " " << options.Name() << " query " << q << " rank " << i;
            EXPECT_EQ(got[i].dist, expect[i].dist);
          }
        }
      }
    }
  }
}

TEST(ReorderTest, PrefetchDisabledSearchIsIdentical) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_points = 300;
  spec.num_queries = 10;
  spec.seed = 99;
  const SyntheticData gen = GenerateSynthetic(spec);
  const FixedDegreeGraph graph =
      NswBuilder::Build(gen.points, Metric::kL2, {});
  const SongSearcher searcher(&gen.points, &graph, Metric::kL2);
  SongSearchOptions with = SongSearchOptions::HashTable();
  SongSearchOptions without = with;
  without.enable_prefetch = false;
  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const float* query = gen.queries.Row(static_cast<idx_t>(q));
    const auto a = searcher.Search(query, 5, with);
    const auto b = searcher.Search(query, 5, without);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].dist, b[i].dist);
    }
  }
}

}  // namespace
}  // namespace song
