// Tests for the graph substrate: fixed-degree storage + IO, the reference
// Algorithm-1 search, NSW construction, kNN graphs, NSG construction and
// graph statistics.

#include <algorithm>
#include <filesystem>
#include <set>

#include "baselines/flat_index.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "graph/fixed_degree_graph.h"
#include "graph/graph_search.h"
#include "graph/graph_stats.h"
#include "graph/knn_graph.h"
#include "graph/nsg_builder.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"

namespace song {
namespace {

// ---- FixedDegreeGraph ----

TEST(FixedDegreeGraph, EmptyRowsArePadded) {
  FixedDegreeGraph g(4, 3);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.degree(), 3u);
  EXPECT_EQ(g.NeighborCount(0), 0u);
  EXPECT_EQ(g.Row(0)[0], kInvalidIdx);
}

TEST(FixedDegreeGraph, SetAndReadNeighbors) {
  FixedDegreeGraph g(4, 3);
  g.SetNeighbors(1, {2, 3});
  EXPECT_EQ(g.NeighborCount(1), 2u);
  EXPECT_EQ(g.Neighbors(1), (std::vector<idx_t>{2, 3}));
  EXPECT_EQ(g.Row(1)[2], kInvalidIdx);
}

TEST(FixedDegreeGraph, AddNeighborRespectsCapacityAndDuplicates) {
  FixedDegreeGraph g(4, 2);
  EXPECT_TRUE(g.AddNeighbor(0, 1));
  EXPECT_FALSE(g.AddNeighbor(0, 1));  // duplicate
  EXPECT_TRUE(g.AddNeighbor(0, 2));
  EXPECT_FALSE(g.AddNeighbor(0, 3));  // full
  EXPECT_EQ(g.NeighborCount(0), 2u);
}

TEST(FixedDegreeGraph, FromAdjacencyTruncates) {
  const std::vector<std::vector<idx_t>> adj = {{1, 2, 3, 0}, {0}, {}, {1, 2}};
  const FixedDegreeGraph g = FixedDegreeGraph::FromAdjacency(adj, 2);
  EXPECT_EQ(g.NeighborCount(0), 2u);
  EXPECT_EQ(g.Neighbors(0), (std::vector<idx_t>{1, 2}));
  EXPECT_EQ(g.NeighborCount(2), 0u);
}

TEST(FixedDegreeGraph, MemoryBytesIsSlotsTimesFour) {
  FixedDegreeGraph g(1000, 16);
  EXPECT_EQ(g.MemoryBytes(), 1000u * 16u * sizeof(idx_t));
}

TEST(FixedDegreeGraph, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_graph_test.bin")
          .string();
  FixedDegreeGraph g(5, 4);
  g.SetNeighbors(0, {1, 2});
  g.SetNeighbors(4, {0, 1, 2, 3});
  ASSERT_TRUE(g.Save(path).ok());
  auto loaded = FixedDegreeGraph::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 5u);
  EXPECT_EQ(loaded->degree(), 4u);
  EXPECT_EQ(loaded->Neighbors(0), g.Neighbors(0));
  EXPECT_EQ(loaded->Neighbors(4), g.Neighbors(4));
  std::remove(path.c_str());
}

TEST(FixedDegreeGraph, LoadMissingFileFails) {
  EXPECT_FALSE(FixedDegreeGraph::Load("/nonexistent/graph.bin").ok());
}

// ---- Shared fixture ----

struct GraphFixture {
  Dataset data;
  Dataset queries;
  std::vector<std::vector<idx_t>> gt10;

  static const GraphFixture& Get() {
    static GraphFixture* f = [] {
      auto* fx = new GraphFixture();
      SyntheticSpec spec;
      spec.name = "graphtest";
      spec.dim = 16;
      spec.num_points = 2000;
      spec.num_queries = 30;
      spec.num_clusters = 8;
      spec.cluster_std = 0.5;
      spec.seed = 31;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->gt10 = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 1));
      return fx;
    }();
    return *f;
  }
};

// ---- VisitedBuffer ----

TEST(VisitedBuffer, EpochSemantics) {
  VisitedBuffer v;
  v.Resize(10);
  v.NextEpoch();
  EXPECT_FALSE(v.Test(3));
  v.Set(3);
  EXPECT_TRUE(v.Test(3));
  v.NextEpoch();
  EXPECT_FALSE(v.Test(3));
}

TEST(VisitedBuffer, TestAndSet) {
  VisitedBuffer v;
  v.Resize(4);
  v.NextEpoch();
  EXPECT_FALSE(v.TestAndSet(2));
  EXPECT_TRUE(v.TestAndSet(2));
}

// ---- NSW builder ----

TEST(NswBuilder, ProducesConnectedSearchableGraph) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.degree = 16;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  EXPECT_EQ(g.num_vertices(), fx.data.num());
  const GraphStats stats = ComputeGraphStats(g, 0);
  EXPECT_EQ(stats.reachable, fx.data.num());
  EXPECT_GT(stats.avg_degree, 2.0);
  EXPECT_LE(stats.max_degree, 16u);
}

TEST(NswBuilder, ParallelBuildIsAlsoSearchable) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.degree = 16;
  opts.num_threads = 4;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  EXPECT_EQ(CountReachable(g, 0), fx.data.num());
  VisitedBuffer visited;
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found =
        GraphSearch(fx.data, Metric::kL2, g, 0,
                    fx.queries.Row(static_cast<idx_t>(q)), 64, 10, &visited);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  EXPECT_GE(MeanRecallAtK(results, fx.gt10, 10), 0.8);
}

TEST(NswBuilder, RespectsDegreeCap) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.degree = 8;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.NeighborCount(static_cast<idx_t>(v)), 8u);
  }
}

TEST(NswBuilder, NoSelfEdges) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.degree = 16;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    for (const idx_t u : g.Neighbors(static_cast<idx_t>(v))) {
      EXPECT_NE(u, static_cast<idx_t>(v));
    }
  }
}

// ---- Reference GraphSearch ----

TEST(GraphSearch, FindsExactNeighborsOnGoodGraph) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.degree = 16;
  opts.ef_construction = 200;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  VisitedBuffer visited;
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found =
        GraphSearch(fx.data, Metric::kL2, g, 0,
                    fx.queries.Row(static_cast<idx_t>(q)), 128, 10,
                    &visited);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  EXPECT_GE(MeanRecallAtK(results, fx.gt10, 10), 0.9);
}

TEST(GraphSearch, StatsAreCollected) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  VisitedBuffer visited;
  GraphSearchStats stats;
  GraphSearch(fx.data, Metric::kL2, g, 0, fx.queries.Row(0), 32, 10,
              &visited, &stats);
  EXPECT_GT(stats.distance_computations, 10u);
  EXPECT_GT(stats.hops, 0u);
  EXPECT_GE(stats.iterations, stats.hops);
}

TEST(GraphSearch, EfOneStillReturnsResults) {
  const GraphFixture& fx = GraphFixture::Get();
  NswBuildOptions opts;
  opts.num_threads = 1;
  const FixedDegreeGraph g = NswBuilder::Build(fx.data, Metric::kL2, opts);
  VisitedBuffer visited;
  const auto found = GraphSearch(fx.data, Metric::kL2, g, 0,
                                 fx.queries.Row(0), 1, 1, &visited);
  ASSERT_EQ(found.size(), 1u);
}

// ---- kNN graphs ----

TEST(KnnGraph, ExactGraphHasTrueNeighbors) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.dim = 8;
  spec.num_points = 200;
  spec.num_queries = 1;
  spec.seed = 5;
  const SyntheticData gen = GenerateSynthetic(spec);
  const FixedDegreeGraph g = BuildExactKnnGraph(gen.points, Metric::kL2, 5, 1);
  FlatIndex flat(&gen.points, Metric::kL2);
  for (idx_t v = 0; v < 20; ++v) {
    const auto exact = flat.Search(gen.points.Row(v), 6);
    std::set<idx_t> expect;
    for (const Neighbor& n : exact) {
      if (n.id != v && expect.size() < 5) expect.insert(n.id);
    }
    const auto got = g.Neighbors(v);
    EXPECT_EQ(std::set<idx_t>(got.begin(), got.end()), expect) << "v=" << v;
  }
}

TEST(KnnGraph, ApproxGraphIsCloseToExact) {
  const GraphFixture& fx = GraphFixture::Get();
  const FixedDegreeGraph approx =
      BuildApproxKnnGraph(fx.data, Metric::kL2, 10, 128, 2);
  const FixedDegreeGraph exact =
      BuildExactKnnGraph(fx.data, Metric::kL2, 10, 2);
  double overlap = 0.0;
  const size_t sample = 200;
  for (idx_t v = 0; v < sample; ++v) {
    const auto a = approx.Neighbors(v);
    const auto e = exact.Neighbors(v);
    const std::set<idx_t> es(e.begin(), e.end());
    size_t hits = 0;
    for (const idx_t u : a) hits += es.count(u);
    overlap += static_cast<double>(hits) / static_cast<double>(e.size());
  }
  EXPECT_GE(overlap / sample, 0.8);
}

TEST(KnnGraph, NoSelfEdges) {
  const GraphFixture& fx = GraphFixture::Get();
  const FixedDegreeGraph g = BuildApproxKnnGraph(fx.data, Metric::kL2, 8, 64,
                                                 2);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    for (const idx_t u : g.Neighbors(static_cast<idx_t>(v))) {
      EXPECT_NE(u, static_cast<idx_t>(v));
    }
  }
}

// ---- NSG ----

TEST(NsgBuilder, BuildsConnectedGraphWithNavigatingNode) {
  const GraphFixture& fx = GraphFixture::Get();
  NsgBuildOptions opts;
  opts.degree = 16;
  opts.num_threads = 2;
  const NsgIndex nsg = NsgBuilder::Build(fx.data, Metric::kL2, opts);
  EXPECT_LT(nsg.navigating_node, fx.data.num());
  EXPECT_EQ(CountReachable(nsg.graph, nsg.navigating_node), fx.data.num());
}

TEST(NsgBuilder, SearchFromNavigatingNodeHasGoodRecall) {
  const GraphFixture& fx = GraphFixture::Get();
  NsgBuildOptions opts;
  opts.degree = 16;
  opts.num_threads = 2;
  const NsgIndex nsg = NsgBuilder::Build(fx.data, Metric::kL2, opts);
  VisitedBuffer visited;
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found = GraphSearch(fx.data, Metric::kL2, nsg.graph,
                                   nsg.navigating_node,
                                   fx.queries.Row(static_cast<idx_t>(q)), 96,
                                   10, &visited);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  EXPECT_GE(MeanRecallAtK(results, fx.gt10, 10), 0.85);
}

TEST(NsgBuilder, RespectsDegreeCap) {
  const GraphFixture& fx = GraphFixture::Get();
  NsgBuildOptions opts;
  opts.degree = 12;
  opts.num_threads = 2;
  const NsgIndex nsg = NsgBuilder::Build(fx.data, Metric::kL2, opts);
  EXPECT_EQ(nsg.graph.degree(), 12u);
}

// ---- GraphStats ----

TEST(GraphStats, CountReachableOnChain) {
  FixedDegreeGraph g(4, 2);
  g.SetNeighbors(0, {1});
  g.SetNeighbors(1, {2});
  // 3 is isolated.
  EXPECT_EQ(CountReachable(g, 0), 3u);
  EXPECT_EQ(CountReachable(g, 3), 1u);
}

TEST(GraphStats, ComputesDegreeDistribution) {
  FixedDegreeGraph g(3, 4);
  g.SetNeighbors(0, {1, 2});
  g.SetNeighbors(1, {0});
  const GraphStats stats = ComputeGraphStats(g, 0);
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_NEAR(stats.avg_degree, 1.0, 1e-9);
  EXPECT_EQ(stats.memory_bytes, 3u * 4u * sizeof(idx_t));
}

}  // namespace
}  // namespace song
