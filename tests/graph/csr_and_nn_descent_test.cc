// Tests for the §IV-A storage ablation (CSR vs fixed-degree) and the
// NN-Descent kNN-graph builder.

#include <set>

#include "graph/csr_graph.h"
#include "graph/knn_graph.h"
#include "graph/nn_descent.h"

#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace song {
namespace {

// ---- CsrGraph ----

TEST(CsrGraph, ConversionPreservesAdjacency) {
  FixedDegreeGraph fixed(4, 3);
  fixed.SetNeighbors(0, {1, 2});
  fixed.SetNeighbors(1, {0});
  fixed.SetNeighbors(3, {0, 1, 2});
  const CsrGraph csr = CsrGraph::FromFixedDegree(fixed);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 6u);
  size_t count = 0;
  const idx_t* row = csr.Neighbors(0, &count);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(csr.NeighborCount(2), 0u);
  EXPECT_EQ(csr.NeighborCount(3), 3u);
}

TEST(CsrGraph, FromAdjacencyRagged) {
  const CsrGraph csr = CsrGraph::FromAdjacency({{1, 2, 3}, {}, {0}});
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.NeighborCount(1), 0u);
}

TEST(CsrGraph, MemoryComparisonVsFixedDegree) {
  // Sparse rows: CSR stores fewer edge slots but pays 8-byte offsets.
  FixedDegreeGraph fixed(1000, 16);
  for (idx_t v = 0; v < 1000; ++v) {
    fixed.SetNeighbors(v, {static_cast<idx_t>((v + 1) % 1000)});
  }
  const CsrGraph csr = CsrGraph::FromFixedDegree(fixed);
  // 1 edge/vertex: CSR wins on memory...
  EXPECT_LT(csr.MemoryBytes(), fixed.MemoryBytes());
  // ...but pays the §IV-A extra dependent transaction on every expansion.
  EXPECT_EQ(CsrGraph::ExpansionTransactions(1), 2u);
  // Fixed-degree row of 16 ids = 64B = one 128B transaction, no indirection.
}

TEST(CsrGraph, FullRowsMakeFixedDegreeStrictlyBetter) {
  FixedDegreeGraph fixed(100, 16);
  std::vector<idx_t> row(16);
  for (idx_t v = 0; v < 100; ++v) {
    for (size_t i = 0; i < 16; ++i) {
      row[i] = static_cast<idx_t>((v + i + 1) % 100);
    }
    fixed.SetNeighbors(v, row);
  }
  const CsrGraph csr = CsrGraph::FromFixedDegree(fixed);
  // Same edge payload, but CSR adds the offset array on top.
  EXPECT_GT(csr.MemoryBytes(), fixed.MemoryBytes());
  EXPECT_GT(CsrGraph::ExpansionTransactions(16), 1u);
}

// ---- NN-Descent ----

struct NnDescentFixture {
  Dataset data;
  FixedDegreeGraph exact;

  static const NnDescentFixture& Get() {
    static NnDescentFixture* f = [] {
      auto* fx = new NnDescentFixture();
      SyntheticSpec spec;
      spec.dim = 12;
      spec.num_points = 1200;
      spec.num_queries = 1;
      spec.num_clusters = 6;
      spec.cluster_std = 0.5;
      spec.seed = 404;
      fx->data = GenerateSynthetic(spec).points;
      fx->exact = BuildExactKnnGraph(fx->data, Metric::kL2, 10, 1);
      return fx;
    }();
    return *f;
  }
};

TEST(NnDescent, HighOverlapWithExactKnnGraph) {
  const NnDescentFixture& fx = NnDescentFixture::Get();
  NnDescentOptions options;
  options.k = 10;
  options.num_threads = 1;
  const FixedDegreeGraph approx =
      BuildNnDescentKnnGraph(fx.data, Metric::kL2, options);
  double overlap = 0.0;
  for (idx_t v = 0; v < fx.data.num(); ++v) {
    const auto a = approx.Neighbors(v);
    const auto e = fx.exact.Neighbors(v);
    const std::set<idx_t> es(e.begin(), e.end());
    size_t hits = 0;
    for (const idx_t u : a) hits += es.count(u);
    overlap += static_cast<double>(hits) / static_cast<double>(e.size());
  }
  EXPECT_GE(overlap / fx.data.num(), 0.85);
}

TEST(NnDescent, RowsSortedNoSelfEdgesCorrectDegree) {
  const NnDescentFixture& fx = NnDescentFixture::Get();
  NnDescentOptions options;
  options.k = 8;
  options.num_threads = 1;
  const FixedDegreeGraph g =
      BuildNnDescentKnnGraph(fx.data, Metric::kL2, options);
  EXPECT_EQ(g.degree(), 8u);
  for (idx_t v = 0; v < 100; ++v) {
    const auto row = g.Neighbors(v);
    EXPECT_EQ(row.size(), 8u);
    float prev = -1.0f;
    for (const idx_t u : row) {
      EXPECT_NE(u, v);
      const float d = L2Sqr(fx.data.Row(v), fx.data.Row(u), fx.data.dim());
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(NnDescent, MoreIterationsNeverWorse) {
  const NnDescentFixture& fx = NnDescentFixture::Get();
  auto overlap_at = [&](size_t iters) {
    NnDescentOptions options;
    options.k = 10;
    options.max_iterations = iters;
    options.termination_delta = 0.0;  // run all rounds
    options.num_threads = 1;
    const FixedDegreeGraph approx =
        BuildNnDescentKnnGraph(fx.data, Metric::kL2, options);
    double overlap = 0.0;
    for (idx_t v = 0; v < fx.data.num(); ++v) {
      const auto a = approx.Neighbors(v);
      const auto e = fx.exact.Neighbors(v);
      const std::set<idx_t> es(e.begin(), e.end());
      size_t hits = 0;
      for (const idx_t u : a) hits += es.count(u);
      overlap += static_cast<double>(hits) / static_cast<double>(e.size());
    }
    return overlap / fx.data.num();
  };
  EXPECT_GE(overlap_at(8) + 0.02, overlap_at(2));
  EXPECT_GT(overlap_at(8), overlap_at(1));
}

TEST(NnDescent, WorksWithTinyDataset) {
  Dataset data(5, 2);
  for (idx_t i = 0; i < 5; ++i) {
    const float row[2] = {static_cast<float>(i), 0.0f};
    data.SetRow(i, row);
  }
  NnDescentOptions options;
  options.k = 3;
  options.num_threads = 1;
  const FixedDegreeGraph g = BuildNnDescentKnnGraph(data, Metric::kL2,
                                                    options);
  // With n=5 and k=3 the exact 3-NN graph is recoverable.
  EXPECT_EQ(g.Neighbors(0), (std::vector<idx_t>{1, 2, 3}));
}

}  // namespace
}  // namespace song
