// Pins the deterministic link-time pruning policy shared by offline
// construction and online insertion (NswBuilder::SelectDiverse): occlusion
// is strict (a candidate survives when its distance to every kept neighbor
// EQUALS its distance to the center), discarded candidates backfill in pool
// order, and the policy is a pure function of the sorted pool — so the
// degree-overflow re-selection MutableIndex runs when a reverse edge lands
// on a full row resolves identically every time. The overflow case was the
// degree edge found while wiring Insert into FixedDegreeGraph: AddNeighbor
// on a full row returns false and must trigger re-selection, never a silent
// drop or an out-of-bounds write.

#include <cstddef>
#include <set>
#include <vector>

#include "core/dataset.h"
#include "core/random.h"
#include "graph/nsw_builder.h"
#include "gtest/gtest.h"
#include "song/mutable_index.h"

namespace song {
namespace {

/// 2-D points at y = 0 unless stated; L2 here is squared Euclidean.
Dataset MakePoints(const std::vector<std::pair<float, float>>& xy) {
  Dataset data(xy.size(), 2);
  for (size_t i = 0; i < xy.size(); ++i) {
    const float row[2] = {xy[i].first, xy[i].second};
    data.SetRow(static_cast<idx_t>(i), row);
  }
  return data;
}

TEST(PruneOrder, OcclusionKeepsDiverseDropsShadowed) {
  // center 0 at x=0; 1 at x=1 (d=1); 3 at x=-1.5 (d=2.25); 2 at x=2 (d=4,
  // shadowed by 1: dist(1,2)=1 < 4); 4 at x=10 (d=100, shadowed by 1).
  const Dataset data =
      MakePoints({{0, 0}, {1, 0}, {2, 0}, {-1.5f, 0}, {10, 0}});
  const std::vector<Neighbor> pool = {
      {1.0f, 1}, {2.25f, 3}, {4.0f, 2}, {100.0f, 4}};

  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 2),
            (std::vector<idx_t>{1, 3}));
  // m=3: backfill pulls the first discarded candidate (2), in pool order.
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 3),
            (std::vector<idx_t>{1, 3, 2}));
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 4),
            (std::vector<idx_t>{1, 3, 2, 4}));
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 1),
            (std::vector<idx_t>{1}));
}

TEST(PruneOrder, EqualDistanceDoesNotOcclude) {
  // 2 = (1, 2) sits on the perpendicular bisector of center..1, so
  // dist(1, 2) == dist(center, 2) == 5 bit-for-bit — the strict `<` in the
  // occlusion rule must keep it.
  const Dataset data = MakePoints({{0, 0}, {2, 0}, {1, 2}});
  const std::vector<Neighbor> pool = {{4.0f, 1}, {5.0f, 2}};
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 2),
            (std::vector<idx_t>{1, 2}));
}

TEST(PruneOrder, EqualCenterDistanceTieBreaksByPoolOrder) {
  // 1 and 2 are both at distance 1 from the center and far from each other:
  // the sorted pool orders the tie by id (Neighbor ordering), and both
  // survive occlusion.
  const Dataset data = MakePoints({{0, 0}, {1, 0}, {-1, 0}});
  const std::vector<Neighbor> pool = {{1.0f, 1}, {1.0f, 2}};
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 2),
            (std::vector<idx_t>{1, 2}));
}

TEST(PruneOrder, CenterAndDuplicateIdsAreSkipped) {
  const Dataset data = MakePoints({{0, 0}, {1, 0}, {3, 0}});
  // A pool polluted with the center itself and a duplicate id: the center
  // never links to itself, the duplicate is occluded (distance 0 to its
  // kept twin) and backfill refuses to re-add a selected id.
  const std::vector<Neighbor> pool = {
      {0.0f, 0}, {1.0f, 1}, {1.0f, 1}, {9.0f, 2}};
  EXPECT_EQ(NswBuilder::SelectDiverse(data, Metric::kL2, 0, pool, 3),
            (std::vector<idx_t>{1, 2}));
}

TEST(PruneOrder, RepairConnectivityNeverDuplicatesAnExistingEdge) {
  // Regression for the duplicate-edge bug found wiring online Insert into
  // FixedDegreeGraph: AddNeighbor returns false both for "row full" and
  // "edge already exists", and RepairConnectivity's evict branch assumed
  // the former — force-writing v into a row that already held it.
  // Construction: 1-D points; BFS from 0 reaches {0, 1, 4}. Orphan 2 gets
  // attached to vertex 0 by evicting the far neighbor 4. Orphan 3 then
  // picks the freshly-attached 2 as its anchor — whose full row [3, 5]
  // ALREADY contains 3 — and the evict branch used to produce [3, 3].
  Dataset data(6, 2);
  const float xs[6] = {0.0f, 1.0f, 2.0f, 3.0f, 100.0f, 50.0f};
  for (idx_t v = 0; v < 6; ++v) {
    const float row[2] = {xs[v], 0.0f};
    data.SetRow(v, row);
  }
  FixedDegreeGraph graph = FixedDegreeGraph::FromAdjacency(
      {{1, 4}, {}, {3, 5}, {2}, {}, {}}, /*degree=*/2);

  NswBuilder::RepairConnectivity(data, Metric::kL2, &graph);

  std::vector<bool> seen(6, false);
  std::vector<idx_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const idx_t v = stack.back();
    stack.pop_back();
    for (const idx_t u : graph.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  for (idx_t v = 0; v < 6; ++v) {
    EXPECT_TRUE(seen[v]) << "vertex " << v << " unreachable after repair";
    const std::vector<idx_t> row = graph.Neighbors(v);
    const std::set<idx_t> uniq(row.begin(), row.end());
    EXPECT_EQ(uniq.size(), row.size())
        << "duplicate neighbor in row of vertex " << v;
  }
  // The already-present edge 2 -> 3 satisfied orphan 3's attachment, so the
  // row must be untouched, not rewritten.
  EXPECT_EQ(graph.Neighbors(2), (std::vector<idx_t>{3, 5}));
}

TEST(PruneOrder, OverflowReselectionIsDeterministicAndBounded) {
  // Drive the reverse-edge overflow path hard: degree 3, many inserts in a
  // tight cluster so nearly every insert lands reverse edges on full rows.
  // Two identical runs must produce edge-for-edge identical graphs (the
  // re-selection is deterministic), and no row may ever exceed its degree.
  constexpr size_t kDim = 4;
  constexpr size_t kInserts = 120;
  auto run = [] {
    MutableIndex index(
        Metric::kL2, kDim,
        MutableIndexOptions{.degree = 3, .ef_construction = 24});
    RandomEngine rng(60221023);
    std::vector<float> p(kDim);
    for (size_t i = 0; i < kInserts; ++i) {
      for (size_t d = 0; d < kDim; ++d) {
        p[d] = static_cast<float>(rng.NextGaussian() * 0.1);
      }
      EXPECT_TRUE(index.Insert(p.data()).ok());
    }
    return index.Acquire();
  };
  const std::shared_ptr<const IndexSnapshot> a = run();
  const std::shared_ptr<const IndexSnapshot> b = run();

  ASSERT_EQ(a->num_points(), kInserts);
  ASSERT_EQ(b->num_points(), kInserts);
  for (idx_t v = 0; v < kInserts; ++v) {
    const std::vector<idx_t> row_a = a->graph().Neighbors(v);
    ASSERT_LE(row_a.size(), a->graph().degree());
    ASSERT_EQ(std::set<idx_t>(row_a.begin(), row_a.end()).size(),
              row_a.size())
        << "duplicate neighbor in row of vertex " << v;
    for (const idx_t u : row_a) {
      ASSERT_LT(u, kInserts);
      ASSERT_NE(u, v);
    }
    EXPECT_EQ(row_a, b->graph().Neighbors(v))
        << "overflow re-selection diverged at vertex " << v;
  }
}

}  // namespace
}  // namespace song
