// Direct tests for NswBuilder::RepairConnectivity (reverse-edge eviction can
// orphan vertices; the repair pass must reconnect them from vertex 0).

#include "graph/nsw_builder.h"

#include "core/random.h"
#include "data/synthetic.h"
#include "graph/graph_stats.h"
#include "gtest/gtest.h"

namespace song {
namespace {

TEST(RepairConnectivity, ReattachesIsolatedVertex) {
  Dataset data(4, 2);
  const float rows[4][2] = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  for (idx_t i = 0; i < 4; ++i) data.SetRow(i, rows[i]);
  FixedDegreeGraph graph(4, 2);
  graph.SetNeighbors(0, {1});
  graph.SetNeighbors(1, {0, 2});
  graph.SetNeighbors(2, {1});
  graph.SetNeighbors(3, {2});  // 3 has out-edges but no in-edges
  ASSERT_EQ(CountReachable(graph, 0), 3u);
  NswBuilder::RepairConnectivity(data, Metric::kL2, &graph);
  EXPECT_EQ(CountReachable(graph, 0), 4u);
}

TEST(RepairConnectivity, HandlesFullRowsByEvictingFarthest) {
  Dataset data(4, 1);
  const float rows[4][1] = {{0}, {1}, {10}, {2}};
  for (idx_t i = 0; i < 4; ++i) data.SetRow(i, rows[i]);
  FixedDegreeGraph graph(4, 2);
  // 0's row is full; 3 is orphaned and names 0 as its nearest out-neighbor.
  graph.SetNeighbors(0, {1, 2});
  graph.SetNeighbors(1, {0});
  graph.SetNeighbors(2, {0});
  graph.SetNeighbors(3, {0});
  NswBuilder::RepairConnectivity(data, Metric::kL2, &graph);
  EXPECT_EQ(CountReachable(graph, 0), 4u);
  // The farthest neighbor of the anchor (vertex 2 at distance 100) was the
  // eviction victim... unless 2 became unreachable and was itself repaired.
  // Either way every vertex must be reachable.
}

TEST(RepairConnectivity, NoopOnConnectedGraph) {
  Dataset data(3, 1);
  const float rows[3][1] = {{0}, {1}, {2}};
  for (idx_t i = 0; i < 3; ++i) data.SetRow(i, rows[i]);
  FixedDegreeGraph graph(3, 2);
  graph.SetNeighbors(0, {1, 2});
  graph.SetNeighbors(1, {0});
  graph.SetNeighbors(2, {0});
  const std::vector<idx_t> before0 = graph.Neighbors(0);
  NswBuilder::RepairConnectivity(data, Metric::kL2, &graph);
  EXPECT_EQ(graph.Neighbors(0), before0);
  EXPECT_EQ(CountReachable(graph, 0), 3u);
}

TEST(RepairConnectivity, ManyOrphansConverge) {
  // A star of orphans: only vertex 0 reachable initially.
  const size_t n = 50;
  Dataset data(n, 2);
  RandomEngine rng(8);
  std::vector<float> row(2);
  for (idx_t i = 0; i < n; ++i) {
    row[0] = static_cast<float>(rng.NextGaussian());
    row[1] = static_cast<float>(rng.NextGaussian());
    data.SetRow(i, row.data());
  }
  FixedDegreeGraph graph(n, 3);
  for (idx_t v = 1; v < n; ++v) graph.SetNeighbors(v, {0});
  ASSERT_EQ(CountReachable(graph, 0), 1u);
  NswBuilder::RepairConnectivity(data, Metric::kL2, &graph);
  EXPECT_EQ(CountReachable(graph, 0), n);
}

}  // namespace
}  // namespace song
