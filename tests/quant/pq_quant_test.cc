// Shared quantization module tests: .sngq codebook round-trip and hardened
// load (truncation / bit-flip / extension / hostile-header corpus must come
// back as Status, never a crash or OOM), the ADC gather kernels against a
// double-precision oracle across every compiled SIMD tier, and the
// PqBatchDistance batch == single bit-identity contract.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/distance_kernels.h"
#include "core/simd.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "quant/pq.h"
#include "quant/pq_distance.h"

namespace song {
namespace {

std::vector<uint8_t> ReadAll(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Same mutation families as the loader-hardening fuzz in
/// tests/harness/corrupt_file_fuzz_test.cc: truncation, bit flips, garbage
/// extension, or a header stomp with an extreme count (the hostile
/// allocation case the bounded reader must refuse).
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& pristine,
                            std::mt19937_64& rng) {
  std::vector<uint8_t> bytes = pristine;
  switch (rng() % 4) {
    case 0: {
      bytes.resize(rng() % (bytes.size() + 1));
      break;
    }
    case 1: {
      const size_t flips = 1 + rng() % 16;
      for (size_t i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[rng() % bytes.size()] ^= uint8_t{1} << (rng() % 8);
      }
      break;
    }
    case 2: {
      const size_t extra = 1 + rng() % 256;
      for (size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng()));
      }
      break;
    }
    default: {
      const uint64_t extremes[] = {0, ~0ull, uint64_t{1} << 62,
                                   uint64_t{1} << 41, 0x4141414141414141ull};
      const uint64_t v = extremes[rng() % 5];
      const size_t header = std::min<size_t>(bytes.size(), 24);
      if (header >= sizeof(v)) {
        const size_t off = rng() % (header - sizeof(v) + 1);
        std::memcpy(bytes.data() + off, &v, sizeof(v));
      }
      break;
    }
  }
  return bytes;
}

struct QuantFixture {
  Dataset data;
  Dataset queries;
  ProductQuantizer pq;
  std::string codebook_path;
  std::vector<uint8_t> codebook_bytes;

  static const QuantFixture& Get() {
    static QuantFixture* f = [] {
      auto* fx = new QuantFixture();
      SyntheticSpec spec;
      spec.dim = 48;
      spec.num_points = 1200;
      spec.num_queries = 8;
      spec.num_clusters = 20;
      spec.cluster_std = 0.6;
      spec.seed = 7301;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      PqOptions popts;
      popts.num_subquantizers = 8;
      popts.train_iterations = 6;
      fx->pq.Train(fx->data, popts);
      fx->codebook_path = ::testing::TempDir() + "/quant_fixture.sngq";
      EXPECT_TRUE(fx->pq.Save(fx->codebook_path).ok());
      fx->codebook_bytes = ReadAll(fx->codebook_path);
      return fx;
    }();
    return *f;
  }
};

// --- Encode / decode / ADC semantics. --------------------------------------

TEST(QuantPq, EncodeDecodeReducesToNearbyVector) {
  const QuantFixture& fx = QuantFixture::Get();
  std::vector<uint8_t> code(fx.pq.code_bytes());
  std::vector<float> decoded(fx.pq.dim());
  double reconstruction = 0.0, magnitude = 0.0;
  for (size_t i = 0; i < fx.data.num(); ++i) {
    const float* row = fx.data.Row(static_cast<idx_t>(i));
    fx.pq.Encode(row, code.data());
    fx.pq.Decode(code.data(), decoded.data());
    for (size_t d = 0; d < fx.pq.dim(); ++d) {
      const double err = row[d] - decoded[d];
      reconstruction += err * err;
      magnitude += static_cast<double>(row[d]) * row[d];
    }
  }
  // Clustered data quantizes well: the reconstruction error must be a small
  // fraction of the signal energy, not just finite.
  EXPECT_LT(reconstruction, 0.2 * magnitude);
}

TEST(QuantPq, AdcDistanceMatchesDecodedDistance) {
  const QuantFixture& fx = QuantFixture::Get();
  ASSERT_EQ(fx.pq.TableEntries(),
            fx.pq.code_bytes() * ProductQuantizer::kCodebookSize);
  std::vector<float> table(fx.pq.TableEntries());
  std::vector<uint8_t> code(fx.pq.code_bytes());
  std::vector<float> decoded(fx.pq.dim());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const float* query = fx.queries.Row(static_cast<idx_t>(q));
    fx.pq.ComputeAdcTable(query, Metric::kL2, table.data());
    for (size_t i = 0; i < 64; ++i) {
      const float* row = fx.data.Row(static_cast<idx_t>(i));
      fx.pq.Encode(row, code.data());
      fx.pq.Decode(code.data(), decoded.data());
      double exact = 0.0;
      for (size_t d = 0; d < fx.pq.dim(); ++d) {
        const double diff = query[d] - decoded[d];
        exact += diff * diff;
      }
      const float adc = fx.pq.AdcDistance(table.data(), code.data());
      EXPECT_NEAR(adc, exact, 1e-2 * std::max(1.0, exact))
          << "query " << q << " row " << i;
    }
  }
}

// --- .sngq round-trip and hardened load. -----------------------------------

TEST(QuantPqIo, SaveLoadRoundTripIsExact) {
  const QuantFixture& fx = QuantFixture::Get();
  StatusOr<ProductQuantizer> loaded =
      ProductQuantizer::Load(fx.codebook_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ProductQuantizer& pq2 = loaded.value();
  EXPECT_EQ(pq2.dim(), fx.pq.dim());
  EXPECT_EQ(pq2.code_bytes(), fx.pq.code_bytes());
  // The reloaded codebook must encode every row to the identical code and
  // produce bit-identical ADC tables — the serving searcher treats a loaded
  // codebook as equivalent to the trained one.
  std::vector<uint8_t> a(fx.pq.code_bytes()), b(fx.pq.code_bytes());
  for (size_t i = 0; i < fx.data.num(); i += 7) {
    const float* row = fx.data.Row(static_cast<idx_t>(i));
    fx.pq.Encode(row, a.data());
    pq2.Encode(row, b.data());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << "row " << i;
  }
  std::vector<float> ta(fx.pq.TableEntries()), tb(fx.pq.TableEntries());
  fx.pq.ComputeAdcTable(fx.queries.Row(0), Metric::kL2, ta.data());
  pq2.ComputeAdcTable(fx.queries.Row(0), Metric::kL2, tb.data());
  EXPECT_EQ(std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)), 0);
}

TEST(QuantPqIo, SaveUntrainedIsFailedPrecondition) {
  ProductQuantizer empty;
  const Status s = empty.Save(::testing::TempDir() + "/untrained.sngq");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(QuantPqIo, LoadMissingFileIsIoError) {
  const StatusOr<ProductQuantizer> r =
      ProductQuantizer::Load("/nonexistent/dir/x.sngq");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(QuantPqIo, LoadWrongMagicIsDataLoss) {
  const QuantFixture& fx = QuantFixture::Get();
  std::vector<uint8_t> bytes = fx.codebook_bytes;
  ASSERT_GE(bytes.size(), 4u);
  bytes[0] = 'X';
  const std::string path = ::testing::TempDir() + "/badmagic.sngq";
  WriteAll(path, bytes);
  const StatusOr<ProductQuantizer> r = ProductQuantizer::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(QuantPqIo, CorruptCodebookCorpusNeverCrashes) {
  const QuantFixture& fx = QuantFixture::Get();
  std::mt19937_64 rng(0x5116);
  const std::string path = fx.codebook_path + ".mut";
  for (size_t round = 0; round < 150; ++round) {
    WriteAll(path, Mutate(fx.codebook_bytes, rng));
    StatusOr<ProductQuantizer> loaded = ProductQuantizer::Load(path);
    if (loaded.ok()) {
      // A load that survives mutation must still be structurally sound
      // enough to encode (the search path trusts these invariants).
      EXPECT_TRUE(loaded->trained()) << "round " << round;
      EXPECT_GT(loaded->dim(), 0u) << "round " << round;
      std::vector<float> vec(loaded->dim(), 0.5f);
      std::vector<uint8_t> code(loaded->code_bytes());
      loaded->Encode(vec.data(), code.data());
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

// --- ADC gather kernels: double oracle + cross-tier + batch identity. ------

TEST(QuantAdcKernels, AllTiersMatchDoubleOracle) {
  const size_t kM[] = {1, 3, 8, 16, 32, 63};
  std::mt19937_64 rng(0xADC0);
  std::normal_distribution<float> nd;
  for (const size_t m : kM) {
    const size_t n = 257;  // odd size exercises every unrolled tail
    std::vector<float> table(m * ProductQuantizer::kCodebookSize);
    for (float& x : table) x = nd(rng);
    std::vector<uint8_t> codes(n * m);
    for (uint8_t& c : codes) c = static_cast<uint8_t>(rng() % 256);
    std::vector<idx_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<idx_t>(i);
    std::shuffle(ids.begin(), ids.end(), rng);

    // Double-precision oracle.
    std::vector<double> oracle(n);
    for (size_t i = 0; i < n; ++i) {
      const uint8_t* code = codes.data() + size_t{ids[i]} * m;
      double sum = 0.0;
      for (size_t s = 0; s < m; ++s) {
        sum += table[s * ProductQuantizer::kCodebookSize + code[s]];
      }
      oracle[i] = sum;
    }

    for (const SimdTier tier :
         {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
      if (!SimdTierCompiled(tier) || tier > CpuSimdTier()) continue;
      const internal::AdcGatherKernel kernel =
          internal::KernelTableForTier(tier).adc_gather;
      ASSERT_NE(kernel, nullptr) << SimdTierName(tier);
      std::vector<float> out(n, -1.0f);
      kernel(table.data(), codes.data(), m, ids.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        // Few-ulp agreement with the double oracle: the summation orders
        // differ per tier but m <= 64 terms cannot drift further than this.
        const double tol =
            1e-5 * std::max(1.0, std::abs(oracle[i])) + 1e-5;
        EXPECT_NEAR(out[i], oracle[i], tol)
            << SimdTierName(tier) << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(QuantAdcKernels, BatchMatchesSingleBitIdentically) {
  std::mt19937_64 rng(0xADC1);
  std::normal_distribution<float> nd;
  for (const size_t m : {8u, 16u, 32u}) {
    const size_t n = 100;
    std::vector<float> table(m * ProductQuantizer::kCodebookSize);
    for (float& x : table) x = nd(rng);
    std::vector<uint8_t> codes(n * m);
    for (uint8_t& c : codes) c = static_cast<uint8_t>(rng() % 256);
    std::vector<idx_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<idx_t>(i);

    for (const SimdTier tier :
         {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
      if (!SimdTierCompiled(tier) || tier > CpuSimdTier()) continue;
      const internal::AdcGatherKernel kernel =
          internal::KernelTableForTier(tier).adc_gather;
      std::vector<float> batch(n), single(n);
      kernel(table.data(), codes.data(), m, ids.data(), n, batch.data());
      for (size_t i = 0; i < n; ++i) {
        kernel(table.data(), codes.data(), m, &ids[i], 1, &single[i]);
      }
      // Within one tier the summation order is fixed, so batch and
      // single-id calls must agree bit-for-bit — the traversal relies on
      // this when it mixes operator() and ComputeBatch.
      EXPECT_EQ(std::memcmp(batch.data(), single.data(),
                            n * sizeof(float)),
                0)
          << SimdTierName(tier) << " m=" << m;
    }
  }
}

TEST(QuantPqBatchDistance, ComputeBatchMatchesComputeAndCountsMemory) {
  const QuantFixture& fx = QuantFixture::Get();
  PqBatchDistance pqd(fx.pq, fx.data, /*num_threads=*/1);
  ASSERT_TRUE(pqd.ready());
  EXPECT_EQ(pqd.num(), fx.data.num());
  EXPECT_EQ(pqd.code_bytes(), fx.pq.code_bytes());
  EXPECT_EQ(pqd.DeviceMemoryBytes(),
            fx.data.num() * fx.pq.code_bytes() + fx.pq.MemoryBytes());

  std::vector<float> table;
  pqd.BuildAdcTable(fx.queries.Row(0), Metric::kL2, &table);
  ASSERT_EQ(table.size(), fx.pq.TableEntries());
  std::vector<idx_t> ids;
  for (size_t i = 0; i < fx.data.num(); i += 3) {
    ids.push_back(static_cast<idx_t>(i));
  }
  std::vector<float> batch(ids.size());
  pqd.ComputeBatch(table.data(), ids.data(), ids.size(), batch.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(batch[i], pqd.Compute(table.data(), ids[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace song
