// HNSW serialization round-trip: a reloaded index must search identically.

#include <cstdio>
#include <filesystem>

#include "baselines/hnsw.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace song {
namespace {

TEST(HnswIo, SaveLoadRoundTripSearchesIdentically) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_points = 1500;
  spec.num_queries = 10;
  spec.num_clusters = 6;
  spec.seed = 91;
  SyntheticData gen = GenerateSynthetic(spec);
  HnswBuildOptions opts;
  opts.num_threads = 1;
  Hnsw original(&gen.points, Metric::kL2, opts);

  const std::string path =
      (std::filesystem::temp_directory_path() / "song_hnsw_io.bin").string();
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = Hnsw::Load(path, &gen.points, Metric::kL2);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->max_level(), original.max_level());
  EXPECT_EQ(loaded->entry_point(), original.entry_point());
  EXPECT_EQ(loaded->MemoryBytes(), original.MemoryBytes());

  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const float* query = gen.queries.Row(static_cast<idx_t>(q));
    const auto a = original.Search(query, 10, 64);
    const auto b = loaded->Search(query, 10, 64);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "q=" << q << " i=" << i;
      EXPECT_FLOAT_EQ(a[i].dist, b[i].dist);
    }
  }
  std::remove(path.c_str());
}

TEST(HnswIo, LoadRejectsWrongDatasetSize) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 200;
  spec.num_queries = 1;
  spec.seed = 92;
  SyntheticData gen = GenerateSynthetic(spec);
  HnswBuildOptions opts;
  opts.num_threads = 1;
  Hnsw original(&gen.points, Metric::kL2, opts);
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_hnsw_io2.bin")
          .string();
  ASSERT_TRUE(original.Save(path).ok());

  Dataset other(100, 8);
  auto loaded = Hnsw::Load(path, &other, Metric::kL2);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(HnswIo, LoadMissingFileFails) {
  Dataset data(10, 4);
  EXPECT_FALSE(Hnsw::Load("/nonexistent/hnsw.bin", &data, Metric::kL2).ok());
}

}  // namespace
}  // namespace song
