// Tests for the baselines: exact flat index, HNSW (the CPU baseline),
// k-means, product quantization and IVFPQ (the Faiss stand-in).

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/flat_index.h"
#include "baselines/hnsw.h"
#include "baselines/ivfpq.h"
#include "baselines/kmeans.h"
#include "quant/pq.h"
#include "core/random.h"
#include "core/recall.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace song {
namespace {

struct BaselineFixture {
  Dataset data;
  Dataset queries;
  std::vector<std::vector<idx_t>> gt10;

  static const BaselineFixture& Get() {
    static BaselineFixture* f = [] {
      auto* fx = new BaselineFixture();
      SyntheticSpec spec;
      spec.name = "baselines";
      spec.dim = 32;
      spec.num_points = 4000;
      spec.num_queries = 40;
      spec.num_clusters = 16;
      spec.cluster_std = 0.5;
      spec.seed = 911;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      FlatIndex flat(&fx->data, Metric::kL2);
      fx->gt10 = FlatIndex::Ids(flat.BatchSearch(fx->queries, 10, 0));
      return fx;
    }();
    return *f;
  }
};

// ---- FlatIndex ----

TEST(FlatIndex, FindsTheExactNearest) {
  Dataset data(3, 2);
  const float rows[3][2] = {{0, 0}, {5, 5}, {1, 1}};
  for (idx_t i = 0; i < 3; ++i) data.SetRow(i, rows[i]);
  FlatIndex flat(&data, Metric::kL2);
  const float q[2] = {0.9f, 0.9f};
  const auto result = flat.Search(q, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 2u);
  EXPECT_EQ(result[1].id, 0u);
}

TEST(FlatIndex, ResultsAscendingAndComplete) {
  const BaselineFixture& fx = BaselineFixture::Get();
  FlatIndex flat(&fx.data, Metric::kL2);
  const auto result = flat.Search(fx.queries.Row(0), 20);
  ASSERT_EQ(result.size(), 20u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

TEST(FlatIndex, KLargerThanDatasetReturnsAll) {
  Dataset data(3, 2);
  FlatIndex flat(&data, Metric::kL2);
  const float q[2] = {0, 0};
  EXPECT_EQ(flat.Search(q, 10).size(), 3u);
}

TEST(FlatIndex, BatchMatchesSingle) {
  const BaselineFixture& fx = BaselineFixture::Get();
  FlatIndex flat(&fx.data, Metric::kL2);
  const auto batch = flat.BatchSearch(fx.queries, 5, 4);
  for (size_t q = 0; q < 5; ++q) {
    const auto single = flat.Search(fx.queries.Row(static_cast<idx_t>(q)), 5);
    ASSERT_EQ(batch[q].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, single[i].id);
    }
  }
}

// ---- HNSW ----

TEST(Hnsw, HighRecallWithModerateEf) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  std::vector<std::vector<idx_t>> results(fx.queries.num());
  for (size_t q = 0; q < fx.queries.num(); ++q) {
    const auto found =
        hnsw.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, 128);
    for (const Neighbor& n : found) results[q].push_back(n.id);
  }
  EXPECT_GE(MeanRecallAtK(results, fx.gt10, 10), 0.9);
}

TEST(Hnsw, RecallImprovesWithEf) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  auto recall_at = [&](size_t ef) {
    std::vector<std::vector<idx_t>> results(fx.queries.num());
    for (size_t q = 0; q < fx.queries.num(); ++q) {
      const auto found =
          hnsw.Search(fx.queries.Row(static_cast<idx_t>(q)), 10, ef);
      for (const Neighbor& n : found) results[q].push_back(n.id);
    }
    return MeanRecallAtK(results, fx.gt10, 10);
  };
  EXPECT_GE(recall_at(128), recall_at(10));
}

TEST(Hnsw, SearchStatsGrowWithEf) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  HnswSearchStats small, large;
  hnsw.Search(fx.queries.Row(0), 10, 10, &small);
  hnsw.Search(fx.queries.Row(0), 10, 200, &large);
  EXPECT_GT(large.distance_computations, small.distance_computations);
}

TEST(Hnsw, ExportBaseLayerIsSearchableGraph) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  const FixedDegreeGraph base = hnsw.ExportBaseLayer();
  EXPECT_EQ(base.num_vertices(), fx.data.num());
  EXPECT_EQ(base.degree(), 2 * opts.m);
}

TEST(Hnsw, ResultsSortedAscending) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  const auto result = hnsw.Search(fx.queries.Row(1), 10, 64);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

TEST(Hnsw, MemoryBytesIsPositive) {
  const BaselineFixture& fx = BaselineFixture::Get();
  HnswBuildOptions opts;
  opts.num_threads = 4;
  Hnsw hnsw(&fx.data, Metric::kL2, opts);
  EXPECT_GT(hnsw.MemoryBytes(), fx.data.num() * sizeof(idx_t));
}

// ---- KMeans ----

TEST(KMeans, RecoversWellSeparatedClusters) {
  // Three tight blobs far apart: inertia must be tiny and assignments
  // consistent within each blob.
  Dataset data(90, 4);
  RandomEngine rng(4);
  for (idx_t i = 0; i < 90; ++i) {
    const float center = static_cast<float>((i / 30) * 100);
    std::vector<float> row(4);
    for (auto& v : row) {
      v = center + static_cast<float>(rng.NextGaussian() * 0.1);
    }
    data.SetRow(i, row.data());
  }
  KMeansOptions opts;
  opts.num_clusters = 3;
  opts.max_iterations = 25;
  const KMeansResult result = RunKMeans(data, opts);
  EXPECT_LT(result.inertia, 1.0);
  for (int blob = 0; blob < 3; ++blob) {
    const idx_t label = result.assignments[blob * 30];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignments[blob * 30 + i], label);
    }
  }
}

TEST(KMeans, ClampsKToDatasetSize) {
  Dataset data(5, 2);
  KMeansOptions opts;
  opts.num_clusters = 100;
  const KMeansResult result = RunKMeans(data, opts);
  EXPECT_EQ(result.centroids.num(), 5u);
}

TEST(KMeans, InertiaDecreasesVsOneIteration) {
  const BaselineFixture& fx = BaselineFixture::Get();
  KMeansOptions one;
  one.num_clusters = 32;
  one.max_iterations = 1;
  KMeansOptions many = one;
  many.max_iterations = 15;
  EXPECT_LE(RunKMeans(fx.data, many).inertia,
            RunKMeans(fx.data, one).inertia + 1e-9);
}

TEST(KMeans, AssignmentsAreNearestCentroid) {
  const BaselineFixture& fx = BaselineFixture::Get();
  KMeansOptions opts;
  opts.num_clusters = 8;
  const KMeansResult result = RunKMeans(fx.data, opts);
  for (idx_t i = 0; i < 50; ++i) {
    const float* p = fx.data.Row(i);
    float best = 1e30f;
    idx_t best_c = 0;
    for (idx_t c = 0; c < result.centroids.num(); ++c) {
      const float d = L2Sqr(p, result.centroids.Row(c), fx.data.dim());
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    EXPECT_EQ(result.assignments[i], best_c);
  }
}

// ---- ProductQuantizer ----

TEST(ProductQuantizer, SubspacePartitionCoversAllDims) {
  const BaselineFixture& fx = BaselineFixture::Get();
  ProductQuantizer pq;
  PqOptions opts;
  opts.num_subquantizers = 5;  // 32 dims -> 7,7,6,6,6
  opts.train_iterations = 4;
  pq.Train(fx.data, opts);
  size_t total = 0;
  for (size_t s = 0; s < pq.num_subquantizers(); ++s) {
    total += pq.SubspaceDim(s);
  }
  EXPECT_EQ(total, fx.data.dim());
}

TEST(ProductQuantizer, EncodeDecodeReducesError) {
  const BaselineFixture& fx = BaselineFixture::Get();
  ProductQuantizer pq;
  PqOptions opts;
  opts.num_subquantizers = 8;
  pq.Train(fx.data, opts);
  std::vector<uint8_t> code(pq.code_bytes());
  std::vector<float> decoded(fx.data.dim());
  double total_err = 0.0, total_norm = 0.0;
  for (idx_t i = 0; i < 100; ++i) {
    pq.Encode(fx.data.Row(i), code.data());
    pq.Decode(code.data(), decoded.data());
    total_err += L2Sqr(fx.data.Row(i), decoded.data(), fx.data.dim());
    total_norm += L2Sqr(fx.data.Row(i),
                        std::vector<float>(fx.data.dim(), 0.0f).data(),
                        fx.data.dim());
  }
  EXPECT_LT(total_err / total_norm, 0.35);  // reconstructs most energy
}

TEST(ProductQuantizer, AdcMatchesDecodedDistance) {
  const BaselineFixture& fx = BaselineFixture::Get();
  ProductQuantizer pq;
  PqOptions opts;
  opts.num_subquantizers = 4;
  pq.Train(fx.data, opts);
  std::vector<float> table(pq.code_bytes() * ProductQuantizer::kCodebookSize);
  std::vector<uint8_t> code(pq.code_bytes());
  std::vector<float> decoded(fx.data.dim());
  const float* q = fx.queries.Row(0);
  pq.ComputeAdcTable(q, Metric::kL2, table.data());
  for (idx_t i = 0; i < 20; ++i) {
    pq.Encode(fx.data.Row(i), code.data());
    pq.Decode(code.data(), decoded.data());
    const float adc = pq.AdcDistance(table.data(), code.data());
    const float direct = L2Sqr(q, decoded.data(), fx.data.dim());
    EXPECT_NEAR(adc, direct, 1e-2f * (1.0f + direct));
  }
}

TEST(ProductQuantizer, InnerProductAdc) {
  const BaselineFixture& fx = BaselineFixture::Get();
  ProductQuantizer pq;
  PqOptions opts;
  opts.num_subquantizers = 4;
  pq.Train(fx.data, opts);
  std::vector<float> table(pq.code_bytes() * ProductQuantizer::kCodebookSize);
  std::vector<uint8_t> code(pq.code_bytes());
  std::vector<float> decoded(fx.data.dim());
  const float* q = fx.queries.Row(1);
  pq.ComputeAdcTable(q, Metric::kInnerProduct, table.data());
  pq.Encode(fx.data.Row(3), code.data());
  pq.Decode(code.data(), decoded.data());
  EXPECT_NEAR(pq.AdcDistance(table.data(), code.data()),
              InnerProduct(q, decoded.data(), fx.data.dim()), 1e-2f);
}

// ---- IVFPQ ----

TEST(IvfPq, RecallImprovesWithNprobe) {
  const BaselineFixture& fx = BaselineFixture::Get();
  IvfPqOptions opts;
  opts.nlist = 64;
  opts.pq_m = 8;
  IvfPqIndex index(&fx.data, Metric::kL2, opts);
  auto recall_at = [&](size_t nprobe) {
    const auto results = index.BatchSearch(fx.queries, 10, nprobe, 4);
    return MeanRecallAtK(FlatIndex::Ids(results), fx.gt10, 10);
  };
  const double r1 = recall_at(1);
  const double r16 = recall_at(16);
  const double r64 = recall_at(64);
  EXPECT_GE(r16, r1);
  EXPECT_GE(r64, r16 - 0.02);
  EXPECT_GE(r64, 0.5);  // quantization caps recall below graph methods
}

TEST(IvfPq, QuantizationCapsRecallBelowExact) {
  // Even probing every list, PQ codes cannot reproduce exact ranking —
  // the effect behind the N/A cells of Table II.
  const BaselineFixture& fx = BaselineFixture::Get();
  IvfPqOptions opts;
  opts.nlist = 32;
  opts.pq_m = 4;  // aggressive compression
  IvfPqIndex index(&fx.data, Metric::kL2, opts);
  const auto results = index.BatchSearch(fx.queries, 10, 32, 4);
  const double recall = MeanRecallAtK(FlatIndex::Ids(results), fx.gt10, 10);
  EXPECT_LT(recall, 0.999);
}

TEST(IvfPq, MemorySmallerThanRawData) {
  const BaselineFixture& fx = BaselineFixture::Get();
  IvfPqOptions opts;
  opts.nlist = 64;
  opts.pq_m = 8;
  IvfPqIndex index(&fx.data, Metric::kL2, opts);
  EXPECT_LT(index.MemoryBytes(), fx.data.PayloadBytes());
}

TEST(IvfPq, HandlesNprobeLargerThanNlist) {
  const BaselineFixture& fx = BaselineFixture::Get();
  IvfPqOptions opts;
  opts.nlist = 16;
  IvfPqIndex index(&fx.data, Metric::kL2, opts);
  const auto result = index.Search(fx.queries.Row(0), 5, 1000);
  EXPECT_EQ(result.size(), 5u);
}

TEST(IvfPq, InnerProductMetricWorks) {
  const BaselineFixture& fx = BaselineFixture::Get();
  IvfPqOptions opts;
  opts.nlist = 32;
  opts.by_residual = false;
  IvfPqIndex index(&fx.data, Metric::kInnerProduct, opts);
  const auto result = index.Search(fx.queries.Row(0), 5, 8);
  ASSERT_EQ(result.size(), 5u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].dist, result[i].dist);
  }
}

}  // namespace
}  // namespace song
