// Tests for the IVFPQ search counters and the Faiss GPU cost model built on
// them.

#include "baselines/ivfpq.h"

#include "data/synthetic.h"
#include "gpusim/faiss_model.h"
#include "gtest/gtest.h"

namespace song {
namespace {

struct IvfFixture {
  Dataset data;
  Dataset queries;
  std::unique_ptr<IvfPqIndex> index;

  static const IvfFixture& Get() {
    static IvfFixture* f = [] {
      auto* fx = new IvfFixture();
      SyntheticSpec spec;
      spec.dim = 16;
      spec.num_points = 2000;
      spec.num_queries = 20;
      spec.num_clusters = 8;
      spec.seed = 33;
      SyntheticData gen = GenerateSynthetic(spec);
      fx->data = std::move(gen.points);
      fx->queries = std::move(gen.queries);
      IvfPqOptions opts;
      opts.nlist = 32;
      opts.pq_m = 4;
      opts.num_threads = 1;
      fx->index = std::make_unique<IvfPqIndex>(&fx->data, Metric::kL2, opts);
      return fx;
    }();
    return *f;
  }
};

TEST(IvfPqStats, CountsListsAndCodes) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats stats;
  fx.index->Search(fx.queries.Row(0), 5, 4, &stats);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.lists_probed, 4u);
  EXPECT_GT(stats.codes_scanned, 0u);
  EXPECT_EQ(stats.table_entries, 4u * 4u * 256u);
  EXPECT_EQ(stats.coarse_distances, fx.index->nlist());
}

TEST(IvfPqStats, FullProbeScansWholeDataset) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats stats;
  fx.index->Search(fx.queries.Row(0), 5, fx.index->nlist(), &stats);
  EXPECT_EQ(stats.codes_scanned, fx.data.num());
}

TEST(IvfPqStats, BatchAccumulates) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats stats;
  fx.index->BatchSearch(fx.queries, 5, 2, 2, &stats);
  EXPECT_EQ(stats.queries, fx.queries.num());
  EXPECT_EQ(stats.lists_probed, 2u * fx.queries.num());
}

TEST(FaissModel, MoreProbesCostMore) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats few, many;
  fx.index->BatchSearch(fx.queries, 5, 1, 1, &few);
  fx.index->BatchSearch(fx.queries, 5, 16, 1, &many);
  const auto t_few =
      EstimateFaissGpu(few, GpuSpec::V100(), fx.data.dim(), 4, 5);
  const auto t_many =
      EstimateFaissGpu(many, GpuSpec::V100(), fx.data.dim(), 4, 5);
  EXPECT_GT(t_many.kernel_seconds, t_few.kernel_seconds);
  EXPECT_GT(t_few.Qps(fx.queries.num()), 0.0);
}

TEST(FaissModel, SlowerCardSlower) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats stats;
  fx.index->BatchSearch(fx.queries, 5, 8, 1, &stats);
  const auto v100 =
      EstimateFaissGpu(stats, GpuSpec::V100(), fx.data.dim(), 4, 5);
  const auto p40 =
      EstimateFaissGpu(stats, GpuSpec::P40(), fx.data.dim(), 4, 5);
  EXPECT_LT(v100.kernel_seconds, p40.kernel_seconds);
}

TEST(FaissModel, TotalsAddUp) {
  const IvfFixture& fx = IvfFixture::Get();
  IvfPqSearchStats stats;
  fx.index->BatchSearch(fx.queries, 5, 8, 1, &stats);
  const auto est =
      EstimateFaissGpu(stats, GpuSpec::V100(), fx.data.dim(), 4, 5);
  EXPECT_NEAR(est.total_seconds,
              est.kernel_seconds + est.htod_seconds + est.dtoh_seconds,
              1e-12);
}

}  // namespace
}  // namespace song
