// IVFPQ serialization round-trip: a reloaded index must search identically.

#include <cstdio>
#include <filesystem>

#include "baselines/ivfpq.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace song {
namespace {

TEST(IvfPqIo, SaveLoadRoundTripSearchesIdentically) {
  SyntheticSpec spec;
  spec.dim = 24;
  spec.num_points = 1500;
  spec.num_queries = 10;
  spec.num_clusters = 6;
  spec.seed = 71;
  SyntheticData gen = GenerateSynthetic(spec);
  IvfPqOptions opts;
  opts.nlist = 24;
  opts.pq_m = 6;
  opts.num_threads = 1;
  IvfPqIndex original(&gen.points, Metric::kL2, opts);

  const std::string path =
      (std::filesystem::temp_directory_path() / "song_ivfpq_io.bin")
          .string();
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = IvfPqIndex::Load(path, &gen.points, Metric::kL2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->nlist(), original.nlist());
  EXPECT_EQ(loaded->pq_m(), original.pq_m());
  EXPECT_EQ(loaded->MemoryBytes(), original.MemoryBytes());

  for (size_t q = 0; q < gen.queries.num(); ++q) {
    const float* query = gen.queries.Row(static_cast<idx_t>(q));
    const auto a = original.Search(query, 10, 8);
    const auto b = loaded->Search(query, 10, 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_FLOAT_EQ(a[i].dist, b[i].dist);
    }
  }
  std::remove(path.c_str());
}

TEST(IvfPqIo, LoadRejectsWrongDataset) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 300;
  spec.num_queries = 1;
  spec.seed = 72;
  SyntheticData gen = GenerateSynthetic(spec);
  IvfPqOptions opts;
  opts.nlist = 8;
  opts.pq_m = 4;
  opts.num_threads = 1;
  IvfPqIndex original(&gen.points, Metric::kL2, opts);
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_ivfpq_io2.bin")
          .string();
  ASSERT_TRUE(original.Save(path).ok());
  Dataset other(100, 8);
  EXPECT_FALSE(IvfPqIndex::Load(path, &other, Metric::kL2).ok());
  std::remove(path.c_str());
}

TEST(IvfPqIo, LoadMissingFileFails) {
  Dataset data(10, 4);
  EXPECT_FALSE(
      IvfPqIndex::Load("/nonexistent/ivfpq.bin", &data, Metric::kL2).ok());
}

TEST(IvfPqIo, LoadTruncatedFileFails) {
  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_points = 200;
  spec.num_queries = 1;
  spec.seed = 73;
  SyntheticData gen = GenerateSynthetic(spec);
  IvfPqOptions opts;
  opts.nlist = 8;
  opts.pq_m = 4;
  opts.num_threads = 1;
  IvfPqIndex original(&gen.points, Metric::kL2, opts);
  const std::string path =
      (std::filesystem::temp_directory_path() / "song_ivfpq_io3.bin")
          .string();
  ASSERT_TRUE(original.Save(path).ok());
  // Truncate to half.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  EXPECT_FALSE(IvfPqIndex::Load(path, &gen.points, Metric::kL2).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace song
