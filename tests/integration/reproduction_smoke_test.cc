// End-to-end reproduction smoke test: runs the full experiment flow at tiny
// scale on every Table I preset and asserts the qualitative claims the
// benches rely on. This guards the figure harnesses against regressions in
// any layer (data generation, graph build, search, baselines, cost model).

#include <string>

#include "baselines/flat_index.h"
#include "baselines/hnsw.h"
#include "baselines/ivfpq.h"
#include "core/recall.h"
#include "data/workload.h"
#include "gpusim/simulator.h"
#include "graph/graph_stats.h"
#include "gtest/gtest.h"

namespace song {
namespace {

class PresetSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PresetSmokeTest, FullFlowHoldsQualitativeClaims) {
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.12;  // ~1k-1.5k points per preset
  opts.num_threads = 1;
  opts.use_cache = false;
  const Workload w = GetWorkload(GetParam(), opts);
  ASSERT_GT(w.data.num(), 0u);
  ASSERT_EQ(w.ground_truth.size(), w.queries.num());

  // Graph must be fully navigable.
  const FixedDegreeGraph graph = GetOrBuildNswGraph(w, 16, opts);
  EXPECT_EQ(CountReachable(graph, 0), w.data.num()) << GetParam();

  // SONG: recall rises with queue size and reaches a usable level.
  SongSearcher searcher(&w.data, &graph, w.metric);
  auto recall_at = [&](size_t queue) {
    SongSearchOptions options = SongSearchOptions::HashTableSelDel();
    options.queue_size = queue;
    const SimulatedRun run = SimulateBatch(searcher, w.queries, 10, options,
                                           GpuSpec::V100(), 1);
    return std::make_pair(
        MeanRecallAtK(run.batch.Ids(), w.ground_truth, 10), run.SimQps());
  };
  const auto [recall_small, qps_small] = recall_at(16);
  const auto [recall_large, qps_large] = recall_at(128);
  EXPECT_GE(recall_large + 1e-9, recall_small) << GetParam();
  EXPECT_GE(recall_large, 0.85) << GetParam();
  // More work can only cost simulated throughput.
  EXPECT_LE(qps_large, qps_small * 1.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSmokeTest,
                         ::testing::Values("nytimes", "sift", "glove200",
                                           "uq_v", "gist", "mnist"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(ReproductionSmoke, HighRecallRegimeBelongsToGraphSearch) {
  // The central comparison of the paper, end to end on one preset: at its
  // reachable ceiling the quantization baseline stops while SONG keeps
  // climbing; and simulated-GPU SONG dwarfs single-thread HNSW.
  WorkloadOptions opts;
  opts.gt_k = 10;
  opts.scale = 0.25;
  opts.num_threads = 1;
  opts.use_cache = false;
  const Workload w = GetWorkload("sift", opts);
  const FixedDegreeGraph graph = GetOrBuildNswGraph(w, 16, opts);

  // SONG at a large queue.
  SongSearcher searcher(&w.data, &graph, w.metric);
  SongSearchOptions options = SongSearchOptions::HashTableSelDel();
  options.queue_size = 192;
  const SimulatedRun song_run = SimulateBatch(searcher, w.queries, 10,
                                              options, GpuSpec::V100(), 1);
  const double song_recall =
      MeanRecallAtK(song_run.batch.Ids(), w.ground_truth, 10);

  // IVFPQ probing every list: its ceiling.
  IvfPqOptions ivf_opts;
  ivf_opts.nlist = 64;
  ivf_opts.pq_m = 16;
  ivf_opts.num_threads = 1;
  const IvfPqIndex ivfpq(&w.data, w.metric, ivf_opts);
  const auto faiss_results =
      ivfpq.BatchSearch(w.queries, 10, ivfpq.nlist(), 1);
  const double faiss_ceiling =
      MeanRecallAtK(FlatIndex::Ids(faiss_results), w.ground_truth, 10);

  EXPECT_GT(song_recall, faiss_ceiling) << "graph search must out-recall "
                                           "the quantization ceiling";

  // HNSW single thread at a comparable recall.
  HnswBuildOptions hnsw_opts;
  hnsw_opts.num_threads = 1;
  const Hnsw hnsw(&w.data, w.metric, hnsw_opts);
  Timer timer;
  std::vector<std::vector<idx_t>> hnsw_ids(w.queries.num());
  for (size_t q = 0; q < w.queries.num(); ++q) {
    for (const Neighbor& n :
         hnsw.Search(w.queries.Row(static_cast<idx_t>(q)), 10, 192)) {
      hnsw_ids[q].push_back(n.id);
    }
  }
  const double hnsw_qps =
      static_cast<double>(w.queries.num()) / timer.ElapsedSeconds();
  EXPECT_GE(MeanRecallAtK(hnsw_ids, w.ground_truth, 10), 0.9);
  EXPECT_GT(song_run.SimQps(), 5.0 * hnsw_qps)
      << "simulated V100 must clearly outrun single-thread CPU";
}

}  // namespace
}  // namespace song
